// Ground-truth execution model: co-location interference, task/job
// throughput, and incremental job-progress integration.
//
// The model keeps three small job-id sets so that per-event work scales with
// the number of jobs actually affected instead of the cluster size:
//   * progressing — active jobs with a positive rate; work integration and
//     ETA projection loop over these only;
//   * dirty — jobs whose colocation inputs changed since the last
//     recomputation (a task changed state, or a neighbor on one of its
//     source instances did); only these get their rate recomputed;
//   * completion candidates — jobs whose remaining work has crossed the
//     completion epsilon; a completion check scans these, not every job.
// A job left out of `dirty` keeps its previous rate, which recomputation
// would reproduce bit-for-bit (its inputs are unchanged), so the incremental
// engine's trajectory is bit-identical to a full per-event recomputation.

#ifndef SRC_SIM_EXECUTION_MODEL_H_
#define SRC_SIM_EXECUTION_MODEL_H_

#include <map>
#include <vector>

#include "src/common/soa_table.h"
#include "src/sched/observation.h"
#include "src/sched/scheduler.h"
#include "src/sim/cluster_state.h"
#include "src/workload/interference.h"

namespace eva {

class Rng;

// A job whose remaining work is below this is complete.
inline constexpr double kWorkEpsilonS = 1e-6;

class ExecutionModel {
 public:
  ExecutionModel(ClusterState* state, const InstanceCatalog* catalog,
                 const InterferenceModel* interference)
      : state_(state), catalog_(catalog), interference_(interference) {}

  // Co-location interference factor only (what the EvaIterator channel
  // reports); 0 when the task is not running. Running neighbors degrade the
  // task; checkpointing neighbors do not. Neighbor task ids in `present` are
  // resolved with at(): the ClusterState pruning invariant makes a stale
  // entry a hard error instead of a silent no-interference result.
  double TaskColocationFactor(const TaskRec& task) const;

  // Full progress rate: co-location factor x hosting family's speedup.
  double TaskThroughput(const TaskRec& task) const;

  // --- Dirty tracking ----------------------------------------------------
  void MarkJobDirty(JobId job) { dirty_.Insert(job); }

  // Marks every job with a container on `instance` dirty (its tasks'
  // colocation sets changed).
  void MarkInstanceDirty(const InstRec& instance);

  // --- Progress integration ----------------------------------------------
  // Advances every progressing job by dt seconds of wall time; jobs whose
  // remaining work crosses the epsilon become completion candidates.
  void IntegrateWork(SimTime dt);

  // Recomputes the rate of every dirty job and returns the earliest
  // projected completion time over all progressing jobs (-1 if none).
  SimTime RecomputeDirtyRates(SimTime now);

  // Jobs whose remaining work is exhausted, ascending by id.
  const IdSet<JobId>& completion_candidates() const { return candidates_; }

  // Must be called when a job completes or is dropped so the tracking sets
  // do not retain it.
  void OnJobDeactivated(JobId job);

  // Registers a just-added job (zero-duration jobs complete immediately).
  void OnJobAdded(const JobRec& job);

  // Progressing jobs with their (node-stable) records: the per-event
  // integration and projection loops read these without re-resolving ids
  // through the cluster state's job map.
  const std::map<JobId, JobRec*>& progressing() const { return progressing_; }

  // One round's throughput observations over the progressing jobs, in job-id
  // order. In physical mode the reported throughput is perturbed with
  // multiplicative Gaussian noise drawn from `rng`. The returned reference
  // points into a persistent batch reused (reset, not reallocated) across
  // rounds; it stays valid until the next CollectObservations call.
  const std::vector<JobThroughputObservation>& CollectObservations(bool physical_mode,
                                                                   double noise_stddev,
                                                                   Rng* rng) const;

 private:
  void RefreshProgressingFlat();

  ClusterState* state_;
  const InstanceCatalog* catalog_;
  const InterferenceModel* interference_;

  // The map is the source of truth (and the stable-API accessor); the flat
  // mirror (same id-ascending order) is what the per-event integration and
  // projection loops iterate — contiguous instead of pointer-chasing.
  std::map<JobId, JobRec*> progressing_;
  std::vector<std::pair<JobId, JobRec*>> progressing_flat_;
  bool progressing_flat_stale_ = false;

  // Flat-storage job-id sets (SoA columns + reused buffers) — the per-event
  // mutation rates made std::set node churn the engine's dominant allocation
  // source. `dirty_` is drained in sorted order, `candidates_` kept sorted,
  // so processing order matches the old std::set iteration exactly.
  EpochSet<JobId> dirty_;
  IdSet<JobId> candidates_;

  // Round-scoped observation buffer, reset per round (CollectObservations
  // is logically const: the batch is storage, not model state).
  mutable ObservationBatch batch_;
};

}  // namespace eva

#endif  // SRC_SIM_EXECUTION_MODEL_H_
