// Versioned event heap for the discrete-event simulator.
//
// Events carry a payload id (`a`: job index / task id / instance id) and a
// version. Versions implement cancellation without heap surgery: state
// transitions bump the owning record's version, so a handler popping an
// event whose version no longer matches simply drops it. Ties at equal
// timestamps break FIFO via a monotonically increasing sequence number,
// which makes the event order — and therefore every simulation — fully
// deterministic.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <vector>

#include "src/common/units.h"

namespace eva {

enum class SimEventType {
  kArrival,
  kRound,
  kInstanceReady,
  kCheckpointDone,
  kLaunchDone,
  kCompletionCheck,
  // Cloud provider market (src/cloud/provider.h): a spot repricing step
  // (scan live spot instances for preemption warnings) and the reclaim of
  // one warned instance after the two-minute notice (`a` = instance id).
  kSpotCheck,
  kSpotPreempt,
  // Fault injection (src/cloud/fault_injector.h): the per-step schedule
  // probe (roll every fault kind for the step just opened), a zone outage
  // (`a` = zone; abrupt kill of everything in the zone), the start of a
  // zone maintenance drain (`a` = zone; graceful eviction with notice), and
  // the expiry of one drained instance's notice (`a` = instance id; abrupt
  // reclaim of whatever is still aboard).
  kFaultCheck,
  kZoneOutage,
  kDrainStart,
  kDrainDeadline,
};

struct SimEvent {
  SimTime time = 0.0;
  std::uint64_t seq = 0;  // FIFO tie-break.
  SimEventType type = SimEventType::kArrival;
  std::int64_t a = 0;  // job index / task id / instance id
  int version = 0;

  // Equal-time ties: arrivals first, then FIFO. The simulator injects
  // arrivals lazily (each pushes its successor) so the heap holds only live
  // events; the explicit arrival priority reproduces the order the old
  // eager push produced implicitly, where every arrival carried a lower
  // sequence number than any dynamically scheduled event — e.g. a job
  // arriving exactly on a round boundary is admitted before that round.
  bool operator>(const SimEvent& other) const {
    if (time != other.time) {
      return time > other.time;
    }
    const int rank = type == SimEventType::kArrival ? 0 : 1;
    const int other_rank = other.type == SimEventType::kArrival ? 0 : 1;
    if (rank != other_rank) {
      return rank > other_rank;
    }
    return seq > other.seq;
  }
};

// Two-lane priority structure popping the exact order a single heap would:
//   * a hand-rolled 4-ary min-heap — shallower than std::priority_queue's
//     binary heap, and its four children share a cache line of SimEvents —
//     for the general population;
//   * a one-element front slot holding the current minimum, so the engine's
//     dominant pattern — push an event earlier than everything outstanding
//     (the completion-check re-arm), pop it next — never sifts the heap.
// Every cross-lane decision uses the exact event comparator, a strict total
// order (time, then arrival rank, then sequence number), so the pop
// sequence — and therefore every simulation — is identical to a plain
// heap's.
class EventQueue {
 public:
  void Push(SimTime time, SimEventType type, std::int64_t a = 0, int version = 0);

  bool Empty() const { return heap_.empty() && !has_front_; }
  std::size_t Size() const { return heap_.size() + (has_front_ ? 1 : 0); }

  // Earliest event (FIFO among ties). Requires !Empty().
  const SimEvent& Top() const;
  SimEvent Pop();

  // Total number of events ever pushed.
  std::uint64_t pushed() const { return next_seq_; }

 private:
  static bool Before(const SimEvent& a, const SimEvent& b) { return b > a; }
  void SiftUp(std::size_t index);
  void SiftDown(std::size_t index);
  void HeapPush(const SimEvent& event);

  std::vector<SimEvent> heap_;
  SimEvent front_;  // The queue minimum, valid when has_front_.
  bool has_front_ = false;
  std::uint64_t next_seq_ = 0;
};

}  // namespace eva

#endif  // SRC_SIM_EVENT_QUEUE_H_
