#include "src/core/eva_scheduler.h"

#include "src/common/logging.h"
#include "src/core/full_reconfig.h"
#include "src/core/partial_reconfig.h"
#include "src/sched/config_diff.h"

namespace eva {
namespace {

// Instantaneous provisioning saving S of a configuration: the amount by
// which the tasks' willingness-to-pay exceeds what the configuration
// actually costs per hour (§4.5).
Money ProvisioningSaving(const SchedulingContext& context, const TnrpCalculator& calculator,
                         const ClusterConfig& config) {
  Money saving = 0.0;
  std::vector<const TaskInfo*> members;
  for (const ConfigInstance& instance : config.instances) {
    members.clear();
    for (TaskId task_id : instance.tasks) {
      if (const TaskInfo* task = context.FindTask(task_id)) {
        members.push_back(task);
      }
    }
    const InstanceType& type = context.catalog->Get(instance.type_index);
    saving += calculator.SetTnrp(members, type.family) - type.cost_per_hour;
  }
  return saving;
}

}  // namespace

EvaScheduler::EvaScheduler(EvaOptions options)
    : options_(std::move(options)),
      monitor_(options_.default_pairwise_throughput),
      estimator_(options_.estimator) {}

std::string EvaScheduler::name() const {
  if (!options_.name.empty()) {
    return options_.name;
  }
  std::string base = "Eva";
  if (!options_.tnrp.interference_aware) {
    base += "-RP";
  }
  if (!options_.tnrp.multi_task_aware) {
    base += "-Single";
  }
  switch (options_.policy) {
    case EvaOptions::Policy::kEnsemble:
      break;
    case EvaOptions::Policy::kFullOnly:
      base += " (Full only)";
      break;
    case EvaOptions::Policy::kPartialOnly:
      base += " (w/o Full)";
      break;
  }
  return base;
}

int EvaScheduler::CountJobEvents(const SchedulingContext& context) {
  std::set<JobId> current;
  for (const TaskInfo& task : context.tasks) {
    current.insert(task.job);
  }
  int events = 0;
  for (JobId job : current) {
    if (!last_jobs_.count(job)) {
      ++events;  // Arrival.
    }
  }
  for (JobId job : last_jobs_) {
    if (!current.count(job)) {
      ++events;  // Completion.
    }
  }
  last_jobs_ = std::move(current);
  return events;
}

ClusterConfig EvaScheduler::Schedule(const SchedulingContext& context) {
  // Re-bind the context's throughput estimates to the learned table — Eva
  // never reads ground truth.
  SchedulingContext local = context;
  local.throughput = &monitor_.table();

  const TnrpCalculator calculator(local, options_.tnrp);

  ClusterConfig full = FullReconfiguration(local, calculator);
  ClusterConfig partial = PartialReconfiguration(local, calculator);

  bool adopt_full = false;
  switch (options_.policy) {
    case EvaOptions::Policy::kFullOnly:
      adopt_full = true;
      break;
    case EvaOptions::Policy::kPartialOnly:
      adopt_full = false;
      break;
    case EvaOptions::Policy::kEnsemble: {
      const Money saving_full = ProvisioningSaving(local, calculator, full);
      const Money saving_partial = ProvisioningSaving(local, calculator, partial);
      const Money migration_full =
          EstimateMigrationCost(local, DiffConfig(local, full), options_.cloud_delays,
                                options_.migration_delay_multiplier);
      const Money migration_partial =
          EstimateMigrationCost(local, DiffConfig(local, partial), options_.cloud_delays,
                                options_.migration_delay_multiplier);
      const double d_hat = estimator_.ExpectedConfigurationDurationHours();
      adopt_full = ShouldAdoptFull(saving_full, saving_partial, migration_full,
                                   migration_partial, d_hat);
      EVA_LOG_DEBUG(
          "round t=%.0f: S_F=%.3f S_P=%.3f M_F=%.3f M_P=%.3f D=%.2fh -> %s", local.now_s,
          saving_full, saving_partial, migration_full, migration_partial, d_hat,
          adopt_full ? "full" : "partial");
      break;
    }
  }

  const int events = CountJobEvents(local);
  const SimTime elapsed =
      last_round_time_ >= 0.0 ? local.now_s - last_round_time_ : 0.0;
  estimator_.RecordRound(events, elapsed, adopt_full);
  last_round_time_ = local.now_s;

  ++stats_.rounds;
  stats_.events_seen += events;
  if (adopt_full) {
    ++stats_.full_adopted;
  }
  return adopt_full ? full : partial;
}

void EvaScheduler::ObserveThroughput(
    const std::vector<JobThroughputObservation>& observations) {
  monitor_.Observe(observations);
}

}  // namespace eva
