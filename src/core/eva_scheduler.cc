#include "src/core/eva_scheduler.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/arena.h"
#include "src/common/logging.h"
#include "src/core/full_reconfig.h"
#include "src/core/incremental_reconfig.h"
#include "src/core/partial_reconfig.h"
#include "src/sched/config_diff.h"

namespace eva {
namespace {

// Instantaneous provisioning saving S of a configuration: the amount by
// which the tasks' willingness-to-pay exceeds what the configuration
// actually costs per hour (§4.5).
// Leased per-call scratch for the pricing passes (see common/arena.h).
struct PricingScratch {
  std::vector<const TaskInfo*> members;
};

Money ProvisioningSaving(const SchedulingContext& context, const TnrpCalculator& calculator,
                         const ClusterConfig& config) {
  Money saving = 0.0;
  ScratchLease<PricingScratch> scratch;
  std::vector<const TaskInfo*>& members = scratch->members;
  for (const ConfigInstance& instance : config.instances) {
    members.clear();
    for (TaskId task_id : instance.tasks) {
      if (const TaskInfo* task = context.FindTask(task_id)) {
        members.push_back(task);
      }
    }
    const InstanceType& type = context.catalog->Get(instance.type_index);
    saving += calculator.SetTnrp(members, type.family) - type.cost_per_hour;
  }
  return saving;
}

// Equality on the TaskInfo fields the candidate configurations read.
// remaining_work_s changes every round but never reaches the packing, so it
// must not defeat the round memo.
bool SamePackingTask(const TaskInfo& a, const TaskInfo& b) {
  return a.id == b.id && a.job == b.job && a.workload == b.workload &&
         a.current_instance == b.current_instance && a.demand_p3 == b.demand_p3 &&
         a.demand_cpu == b.demand_cpu && a.family_speedup == b.family_speedup;
}

bool SameInstance(const InstanceInfo& a, const InstanceInfo& b) {
  return a.id == b.id && a.type_index == b.type_index && a.tasks == b.tasks;
}

}  // namespace

EvaScheduler::EvaScheduler(EvaOptions options)
    : options_(std::move(options)),
      monitor_(options_.default_pairwise_throughput),
      estimator_(options_.estimator),
      incremental_active_(options_.incremental_packing ==
                          EvaOptions::IncrementalPacking::kOn),
      escalation_(options_.escalation) {}

void EvaScheduler::BindWorkloadScale(std::size_t expected_jobs) {
  if (options_.incremental_packing == EvaOptions::IncrementalPacking::kAuto) {
    incremental_active_ = expected_jobs >= options_.incremental_auto_min_jobs;
  }
}

void EvaScheduler::ExportCounters(SchedulerCounters& out) const {
  out.packs_full += counters_.packs_full;
  out.packs_incremental += counters_.packs_incremental;
  out.packs_escalated += counters_.packs_escalated;
  out.reconciliations += counters_.reconciliations;
  out.escalations += counters_.escalations;
  out.fallback_incomplete_delta += counters_.fallback_incomplete_delta;
  out.fallback_oversized_delta += counters_.fallback_oversized_delta;
  out.fallback_no_previous += counters_.fallback_no_previous;
  out.last_divergence_cost = counters_.last_divergence_cost;
  out.max_divergence_cost = std::max(out.max_divergence_cost, counters_.max_divergence_cost);
  out.last_divergence_edits = counters_.last_divergence_edits;
  out.max_divergence_edits = std::max(out.max_divergence_edits, counters_.max_divergence_edits);
  out.max_kept_staleness = std::max(out.max_kept_staleness, counters_.max_kept_staleness);
}

std::string EvaScheduler::name() const {
  if (!options_.name.empty()) {
    return options_.name;
  }
  std::string base = "Eva";
  if (!options_.tnrp.interference_aware) {
    base += "-RP";
  }
  if (!options_.tnrp.multi_task_aware) {
    base += "-Single";
  }
  switch (options_.policy) {
    case EvaOptions::Policy::kEnsemble:
      break;
    case EvaOptions::Policy::kFullOnly:
      base += " (Full only)";
      break;
    case EvaOptions::Policy::kPartialOnly:
      base += " (w/o Full)";
      break;
  }
  return base;
}

int EvaScheduler::CountJobEvents(const SchedulingContext& context) {
  if (context.delta.complete) {
    // Same accounting as the set diff below, O(delta): a job that both
    // arrived and completed inside the window was never visible to a round
    // on either side, so it contributes no event. Both vectors arrive
    // sorted and job ids are never reused, making the symmetric difference
    // exact. last_jobs_ is maintained alongside so a later round without a
    // delta (a hand-built context) can still fall back to the set diff.
    int events = 0;
    const std::vector<JobId>& arrived = context.delta.jobs_arrived;
    const std::vector<JobId>& completed = context.delta.jobs_completed;
    std::size_t a = 0;
    std::size_t c = 0;
    while (a < arrived.size() || c < completed.size()) {
      if (c == completed.size() || (a < arrived.size() && arrived[a] < completed[c])) {
        ++events;  // Arrival still active at this round.
        last_jobs_.insert(arrived[a]);
        ++a;
      } else if (a == arrived.size() || completed[c] < arrived[a]) {
        ++events;  // Completion of a job a previous round saw.
        last_jobs_.erase(completed[c]);
        ++c;
      } else {
        ++a;  // Arrived and completed within the window: invisible.
        ++c;
      }
    }
    return events;
  }
  // Fallback (incomplete delta): symmetric difference of sorted job-id
  // sequences. The leased scratch + sort/unique reproduces std::set's
  // ascending iteration order without a node per job.
  ScratchLease<std::vector<JobId>> current_lease;
  std::vector<JobId>& current = *current_lease;
  current.clear();
  for (const TaskInfo& task : context.tasks) {
    current.push_back(task.job);
  }
  std::sort(current.begin(), current.end());
  current.erase(std::unique(current.begin(), current.end()), current.end());
  int events = 0;
  for (JobId job : current) {
    if (!last_jobs_.contains(job)) {
      ++events;  // Arrival.
    }
  }
  for (JobId job : last_jobs_) {
    if (!std::binary_search(current.begin(), current.end(), job)) {
      ++events;  // Completion.
    }
  }
  last_jobs_.AssignSorted(current);
  return events;
}

bool EvaScheduler::SameDecisionInputs(const SchedulingContext& context) const {
  if (context.catalog != memo_.catalog) {
    return false;  // Repriced catalog (spot quotes): candidates are stale.
  }
  if (context.tasks.size() != memo_.tasks.size() ||
      context.instances.size() != memo_.instances.size()) {
    return false;
  }
  for (std::size_t i = 0; i < context.tasks.size(); ++i) {
    if (!SamePackingTask(context.tasks[i], memo_.tasks[i])) {
      return false;
    }
  }
  for (std::size_t i = 0; i < context.instances.size(); ++i) {
    if (!SameInstance(context.instances[i], memo_.instances[i])) {
      return false;
    }
  }
  return true;
}

void EvaScheduler::ComputeCandidates(const SchedulingContext& context) {
  PackingOptions packing;
  packing.pool = pool_.get();

  const bool want_full = options_.policy != EvaOptions::Policy::kPartialOnly;
  const bool want_partial = options_.policy != EvaOptions::Policy::kFullOnly;

  // Candidates are packed into the persistent work buffers (their capacity —
  // and every instance slot's tasks capacity — carries across rounds), then
  // swapped into the memo below. The incremental path reads memo_.full as
  // the previous configuration while writing work_full_, which is why the
  // memo cannot be the pack destination directly. A candidate the policy
  // does not compute is emptied, matching the fresh-local semantics.
  if (!want_full) {
    work_full_.instances.clear();
  }
  if (!want_partial) {
    work_partial_.instances.clear();
  }
  const auto compute_full = [&] { ComputeFullCandidate(context, packing); };
  const auto compute_partial = [&] {
    PartialReconfigurationInto(context, *calculator_, packing, work_partial_);
  };

  if (want_full && want_partial && pool_ != nullptr) {
    // The two candidates are independent; the calculator's caches are
    // concurrency-safe and value-deterministic, so this fan-out cannot
    // change the result.
    ThreadPool::TaskGroup group(*pool_);
    group.Submit(compute_full);
    compute_partial();
    group.Wait();
  } else {
    if (want_full) {
      compute_full();
    }
    if (want_partial) {
      compute_partial();
    }
  }

  memo_.valid = true;
  memo_.table_version = monitor_.table().Version();
  memo_.catalog = context.catalog;
  memo_.tasks = context.tasks;
  memo_.instances = context.instances;
  std::swap(memo_.full, work_full_);
  std::swap(memo_.partial, work_partial_);
  memo_.savings_valid = false;
}

void EvaScheduler::NoteExactIncumbent() {
  packs_since_reconcile_ = 0;
  reconcile_requested_ = false;
  // Truthful by construction — the incumbent IS the exact configuration.
  // This is also what lets an escalated policy clear its divergence latch:
  // while escalated no incremental config exists to diverge.
  escalation_.RecordDivergence(0.0);
}

void EvaScheduler::Reconcile(const SchedulingContext& context,
                             const PackingOptions& packing) {
  // The incremental candidate sits in work_full_; compute the exact repack
  // alongside and measure how far the fast path drifted.
  FullReconfigurationInto(context, *calculator_, packing, reconcile_exact_);
  const Money cost_incremental = work_full_.HourlyCost(*context.catalog);
  const Money cost_exact = reconcile_exact_.HourlyCost(*context.catalog);
  const double divergence = std::abs(cost_incremental - cost_exact) /
                            std::max(std::abs(cost_exact), 1e-9);
  const int edits = ConfigEditDistance(work_full_, reconcile_exact_);
  ++counters_.reconciliations;
  counters_.last_divergence_cost = divergence;
  counters_.max_divergence_cost = std::max(counters_.max_divergence_cost, divergence);
  counters_.last_divergence_edits = edits;
  counters_.max_divergence_edits = std::max(counters_.max_divergence_edits, edits);
  const int before = escalation_.escalations();
  escalation_.RecordDivergence(divergence);
  counters_.escalations += escalation_.escalations() - before;
  if (trace_) {
    trace_.recorder->Instant(trace_.track, "eva.reconcile", context.now_s,
                             "divergence", divergence, "edits",
                             static_cast<double>(edits));
    if (escalation_.escalations() > before) {
      trace_.recorder->Instant(trace_.track, "eva.escalate", context.now_s);
    }
  }
  EVA_LOG_DEBUG("reconcile t=%.0f: cost_inc=%.3f cost_exact=%.3f div=%.4f edits=%d%s",
                context.now_s, cost_incremental, cost_exact, divergence, edits,
                escalation_.escalated() ? " [escalated]" : "");
  // Adopt the exact result: divergence is re-zeroed and stays bounded by
  // whatever accumulates before the next reconciliation.
  std::swap(work_full_, reconcile_exact_);
  packs_since_reconcile_ = 0;
  reconcile_requested_ = false;
}

void EvaScheduler::ComputeFullCandidate(const SchedulingContext& context,
                                        const PackingOptions& packing) {
  if (!incremental_active_) {
    FullReconfigurationInto(context, *calculator_, packing, work_full_);
    ++stats_.full_packs;
    ++counters_.packs_full;
    if (trace_) {
      trace_.recorder->Instant(trace_.track, "eva.pack.full", context.now_s);
    }
    return;
  }
  if (escalation_.escalated()) {
    FullReconfigurationInto(context, *calculator_, packing, work_full_);
    ++stats_.full_packs;
    ++counters_.packs_escalated;
    escalation_.RecordPack(/*fell_back=*/false);
    NoteExactIncumbent();
    if (trace_) {
      trace_.recorder->Instant(trace_.track, "eva.pack.escalated",
                               context.now_s);
    }
    return;
  }
  if (!memo_.valid) {
    FullReconfigurationInto(context, *calculator_, packing, work_full_);
    ++stats_.full_packs;
    ++counters_.packs_full;
    ++counters_.fallback_no_previous;
    escalation_.RecordPack(/*fell_back=*/true);
    NoteExactIncumbent();
    if (trace_) {
      trace_.recorder->Instant(trace_.track, "eva.pack.fallback",
                               context.now_s, "reason", 2.0);
    }
    return;
  }
  IncrementalOptions incremental;
  incremental.packing = packing;
  incremental.full_repack_fraction = options_.incremental_full_repack_fraction;
  const IncrementalOutcome outcome = IncrementalReconfigurationInto(
      context, *calculator_, memo_.full, incremental, work_full_);
  if (outcome == IncrementalOutcome::kIncremental) {
    ++stats_.incremental_packs;
    ++counters_.packs_incremental;
    if (trace_) {
      trace_.recorder->Instant(trace_.track, "eva.pack.incremental",
                               context.now_s, "staleness",
                               static_cast<double>(packs_since_reconcile_ + 1));
    }
    {
      const int before = escalation_.escalations();
      escalation_.RecordPack(/*fell_back=*/false);
      counters_.escalations += escalation_.escalations() - before;
    }
    ++packs_since_reconcile_;
    counters_.max_kept_staleness =
        std::max(counters_.max_kept_staleness, packs_since_reconcile_);
    if (reconcile_requested_ || (options_.reconcile_every_n_packs > 0 &&
                                 packs_since_reconcile_ >= options_.reconcile_every_n_packs)) {
      Reconcile(context, packing);
    }
    return;
  }
  // The incremental path fell back — work_full_ already holds the exact
  // repack, so no reconciliation is owed; account for the reason and let
  // the fallback-rate EMA see it.
  ++stats_.full_packs;
  ++counters_.packs_full;
  double fallback_reason = 0.0;
  switch (outcome) {
    case IncrementalOutcome::kFullIncompleteDelta:
      ++counters_.fallback_incomplete_delta;
      fallback_reason = 0.0;
      break;
    case IncrementalOutcome::kFullNoPrevious:
      ++counters_.fallback_no_previous;
      fallback_reason = 2.0;
      break;
    case IncrementalOutcome::kFullOversizedDelta:
      ++counters_.fallback_oversized_delta;
      fallback_reason = 1.0;
      break;
    case IncrementalOutcome::kIncremental:
      break;  // Unreachable.
  }
  if (trace_) {
    trace_.recorder->Instant(trace_.track, "eva.pack.fallback", context.now_s,
                             "reason", fallback_reason);
  }
  {
    const int before = escalation_.escalations();
    escalation_.RecordPack(/*fell_back=*/true);
    counters_.escalations += escalation_.escalations() - before;
  }
  NoteExactIncumbent();
}

bool EvaScheduler::DecideRound(const SchedulingContext& context) {
  if (!pool_resolved_) {
    pool_resolved_ = true;
    const int threads = options_.max_parallelism == 0 ? ThreadPool::DefaultThreads()
                                                      : options_.max_parallelism;
    if (threads > 1) {
      pool_ = std::make_unique<ThreadPool>(threads);
    }
  }

  bool unchanged = false;
  if (options_.reuse_unchanged_rounds && memo_.valid) {
    if (memo_.table_version != monitor_.table().Version()) {
      ++stats_.reuse_miss_table;
    } else if (!SameDecisionInputs(context)) {
      ++stats_.reuse_miss_context;
    } else {
      unchanged = true;
    }
  }

  // Bind the persistent calculator to this round's context, with the
  // learned table as estimator — Eva never reads the context's ground
  // truth, and the context itself is never copied.
  if (calculator_ == nullptr) {
    calculator_ = std::make_unique<TnrpCalculator>(context, options_.tnrp, &monitor_.table());
    // Without a pool every pricing call runs on this thread; shed the
    // cache-shard mutexes.
    calculator_->set_concurrent(pool_ != nullptr);
  } else {
    calculator_->Rebind(context, &monitor_.table());
  }

  if (unchanged) {
    ++stats_.rounds_reused;
  } else {
    ComputeCandidates(context);
  }

  bool adopt_full = false;
  switch (options_.policy) {
    case EvaOptions::Policy::kFullOnly:
      adopt_full = true;
      break;
    case EvaOptions::Policy::kPartialOnly:
      adopt_full = false;
      break;
    case EvaOptions::Policy::kEnsemble: {
      if (!memo_.savings_valid) {
        memo_.saving_full = ProvisioningSaving(context, *calculator_, memo_.full);
        memo_.saving_partial = ProvisioningSaving(context, *calculator_, memo_.partial);
        DiffConfigInto(context, memo_.full, pricing_diff_);
        memo_.migration_full =
            EstimateMigrationCost(context, pricing_diff_, options_.cloud_delays,
                                  options_.migration_delay_multiplier);
        DiffConfigInto(context, memo_.partial, pricing_diff_);
        memo_.migration_partial =
            EstimateMigrationCost(context, pricing_diff_, options_.cloud_delays,
                                  options_.migration_delay_multiplier);
        memo_.savings_valid = true;
      }
      const double d_hat = estimator_.ExpectedConfigurationDurationHours();
      adopt_full = ShouldAdoptFull(memo_.saving_full, memo_.saving_partial,
                                   memo_.migration_full, memo_.migration_partial, d_hat);
      EVA_LOG_DEBUG(
          "round t=%.0f: S_F=%.3f S_P=%.3f M_F=%.3f M_P=%.3f D=%.2fh -> %s", context.now_s,
          memo_.saving_full, memo_.saving_partial, memo_.migration_full,
          memo_.migration_partial, d_hat, adopt_full ? "full" : "partial");
      break;
    }
  }

  // An unchanged round has, by definition, the same active job set.
  const int events = unchanged ? 0 : CountJobEvents(context);
  const SimTime elapsed =
      last_round_time_ >= 0.0 ? context.now_s - last_round_time_ : 0.0;
  estimator_.RecordRound(events, elapsed, adopt_full);
  last_round_time_ = context.now_s;

  ++stats_.rounds;
  stats_.events_seen += events;
  if (adopt_full) {
    ++stats_.full_adopted;
  }
  last_adopt_full_ = adopt_full;
  return adopt_full;
}

ClusterConfig EvaScheduler::Schedule(const SchedulingContext& context) {
  return DecideRound(context) ? memo_.full : memo_.partial;
}

void EvaScheduler::ScheduleInto(const SchedulingContext& context, ClusterConfig& out) {
  // Copy-assign (not move) so the memo keeps the winning candidate for the
  // next round's reuse/coalescing paths, while `out` reuses whatever
  // instance-slot capacity it accumulated in earlier rounds.
  out = DecideRound(context) ? memo_.full : memo_.partial;
}

int EvaScheduler::CoalesceQuiescentRounds(int max_rounds, SimTime period_s) {
  if (!options_.coalesce_quiescent_rounds || !options_.reuse_unchanged_rounds ||
      max_rounds <= 0 || period_s <= 0.0) {
    return 0;
  }
  // The memo must cover the currently applied configuration, the table must
  // not have moved since the memo was stamped, and re-delivering the (by
  // contract identical) observations must be a provable no-op.
  if (!memo_.valid || last_observe_changed_ ||
      memo_.table_version != monitor_.table().Version()) {
    return 0;
  }
  if (options_.policy == EvaOptions::Policy::kEnsemble && !memo_.savings_valid) {
    return 0;  // No priced candidates to replay (defensive; Schedule prices them).
  }
  int absorbed = 0;
  while (absorbed < max_rounds) {
    // Replay exactly what a memo-reusing Schedule call would decide. D_hat
    // drifts as the estimator records event-free rounds, so the ensemble
    // choice can flip mid-quiescence; that round must run live and actually
    // reconfigure the cluster.
    bool adopt_full = false;
    switch (options_.policy) {
      case EvaOptions::Policy::kFullOnly:
        adopt_full = true;
        break;
      case EvaOptions::Policy::kPartialOnly:
        adopt_full = false;
        break;
      case EvaOptions::Policy::kEnsemble: {
        const double d_hat = estimator_.ExpectedConfigurationDurationHours();
        adopt_full = ShouldAdoptFull(memo_.saving_full, memo_.saving_partial,
                                     memo_.migration_full, memo_.migration_partial, d_hat);
        break;
      }
    }
    if (adopt_full != last_adopt_full_) {
      break;
    }
    // The per-round state updates of an unchanged round, verbatim: zero job
    // events over one period (RecordRound ignores the adoption flag when the
    // round carried no events, but pass it for fidelity), and the round time
    // advanced exactly as the engine's event clock would compute it.
    estimator_.RecordRound(0, period_s, adopt_full);
    if (last_round_time_ >= 0.0) {
      last_round_time_ += period_s;
    }
    ++stats_.rounds;
    ++stats_.rounds_reused;
    ++stats_.rounds_coalesced;
    if (adopt_full) {
      ++stats_.full_adopted;
    }
    ++absorbed;
  }
  return absorbed;
}

void EvaScheduler::ObserveThroughput(
    const std::vector<JobThroughputObservation>& observations) {
  last_observe_changed_ = monitor_.Observe(observations) != 0;
}

}  // namespace eva
