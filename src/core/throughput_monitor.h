// The ThroughputMonitor (§3, §4.3, §4.4).
//
// Maintains Eva's co-location throughput table online. Single-task jobs
// update their entry directly; for multi-task jobs a drop in job throughput
// could come from any task's co-location, so the monitor applies the
// paper's attribution rules to update exactly one entry per observation,
// keeping every recorded value a lower bound of the true co-location
// throughput:
//   1. no task's entry recorded yet        -> update the task co-located
//      with the most tasks;
//   2. some recorded entry is lower than   -> raise the lowest recorded
//      the observation                        entry to the observation;
//   3. all recorded entries are >= the     -> update the *unrecorded* task
//      observation                            co-located with the most
//                                             tasks (or, if every entry is
//                                             recorded, lower the minimum —
//                                             observation noise).

#ifndef SRC_CORE_THROUGHPUT_MONITOR_H_
#define SRC_CORE_THROUGHPUT_MONITOR_H_

#include <vector>

#include "src/sched/scheduler.h"
#include "src/sched/throughput_estimator.h"

namespace eva {

class ThroughputMonitor {
 public:
  explicit ThroughputMonitor(double default_pairwise = 0.95);

  // Processes one scheduling window's worth of observations. Returns the
  // number of table entries whose value actually changed — 0 means every
  // estimate (and thus every memoized TNRP) is still valid, the common
  // steady-state case that keeps quiescent scheduling rounds cheap.
  int Observe(const std::vector<JobThroughputObservation>& observations);

  const ThroughputTable& table() const { return table_; }
  ThroughputTable& mutable_table() { return table_; }

 private:
  bool ObserveJob(const JobThroughputObservation& observation);

  ThroughputTable table_;
};

}  // namespace eva

#endif  // SRC_CORE_THROUGHPUT_MONITOR_H_
