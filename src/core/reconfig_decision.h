// The quantitative Full-vs-Partial criterion (§4.5).
//
// Eva adopts Full Reconfiguration when the provisioning savings it unlocks
// outlast the migration overhead it incurs:
//     S_F * D - M_F > S_P * D - M_P                       (Equation 1)
// where S is each candidate's instantaneous provisioning saving ($/hr,
// computed as sum over instances of TNRP - cost), M is the migration cost
// of switching to the candidate ($), and D is how long the configuration
// will last. D is unknown; modeling job arrivals/completions ("events") as
// a Poisson process with rate lambda, and each event triggering a Full
// Reconfiguration with probability p, the expected time to the next Full
// Reconfiguration is
//     D_hat = -1 / (lambda * ln(1 - p)).
// lambda and p are estimated online with exponential moving averages.

#ifndef SRC_CORE_RECONFIG_DECISION_H_
#define SRC_CORE_RECONFIG_DECISION_H_

#include "src/common/units.h"

namespace eva {

// Online estimator for lambda (events/hour) and p (P[event adopts Full]).
class EventRateEstimator {
 public:
  struct Options {
    double initial_events_per_hour = 6.0;
    double initial_full_probability = 0.5;
    double ema_alpha = 0.1;
    double min_probability = 0.02;
    double max_probability = 0.98;
  };

  explicit EventRateEstimator(const Options& options);

  // Reports one scheduling round: how many arrival/completion events were
  // seen since the previous round, the elapsed wall time, and whether the
  // round adopted Full Reconfiguration.
  void RecordRound(int events, SimTime elapsed_s, bool adopted_full);

  double events_per_hour() const { return events_per_hour_; }
  double full_probability() const { return full_probability_; }

  // D_hat in hours.
  double ExpectedConfigurationDurationHours() const;

 private:
  Options options_;
  double events_per_hour_;
  double full_probability_;
};

// Equation 1. All S/M values in dollars-per-hour / dollars; duration in
// hours. Returns true when Full Reconfiguration should be adopted.
bool ShouldAdoptFull(Money saving_full_per_hour, Money saving_partial_per_hour,
                     Money migration_cost_full, Money migration_cost_partial,
                     double expected_duration_hours);

// Auto-escalation policy for the incremental fast path: decides when the
// delta-touched repacking should be abandoned for exact Algorithm 1 until
// further notice. Two triggers, both with hysteresis so the policy cannot
// flap round-to-round:
//
//   * divergence — the relative provisioning-cost divergence measured at
//     the last exact-repack reconciliation met `divergence_enter`; the
//     trigger stays latched until a later reconciliation measures at or
//     below `divergence_exit` (values in between change nothing);
//   * fallback frequency — the EMA of how often the incremental path fell
//     back to a full repack exceeded `fallback_rate_enter` (when most packs
//     fall back anyway, the incremental bookkeeping is pure overhead).
//
// Once escalated, the policy holds for at least `min_hold_packs` exact
// packs, and de-escalates only when the divergence latch has cleared (while
// escalated the incumbent *is* the exact configuration, so reconciliations
// truthfully record zero divergence). De-escalation resets the fallback EMA
// to start a fresh observation window. Purely deterministic: state advances
// only through RecordPack/RecordDivergence, which the scheduler calls once
// per computed pack — never on memo-replayed or coalesced rounds.
class EscalationPolicy {
 public:
  struct Options {
    double divergence_enter = 0.15;  // Relative cost divergence that escalates.
    double divergence_exit = 0.05;   // Divergence that releases the latch.
    double fallback_rate_enter = 0.60;
    double fallback_ema_alpha = 0.05;
    int min_hold_packs = 32;  // Exact packs held before de-escalation.
  };

  EscalationPolicy() : EscalationPolicy(Options()) {}
  explicit EscalationPolicy(const Options& options);

  // Records one incremental-mode pack: whether the incremental path fell
  // back to a full repack (ignored while escalated — packs then run exact
  // by policy, and only advance the hold counter).
  void RecordPack(bool fell_back);

  // Records the relative provisioning-cost divergence measured at an
  // exact-repack reconciliation.
  void RecordDivergence(double cost_divergence);

  // True when packs should run exact Algorithm 1 until further notice.
  bool escalated() const { return escalated_; }

  double fallback_rate() const { return fallback_rate_; }
  double last_divergence() const { return last_divergence_; }
  int escalations() const { return escalations_; }

 private:
  void Escalate();
  void MaybeDeescalate();

  Options options_;
  double fallback_rate_ = 0.0;
  double last_divergence_ = 0.0;
  bool divergence_high_ = false;  // The divergence latch.
  bool escalated_ = false;
  int hold_ = 0;  // Exact packs since escalating.
  int escalations_ = 0;
};

}  // namespace eva

#endif  // SRC_CORE_RECONFIG_DECISION_H_
