// The quantitative Full-vs-Partial criterion (§4.5).
//
// Eva adopts Full Reconfiguration when the provisioning savings it unlocks
// outlast the migration overhead it incurs:
//     S_F * D - M_F > S_P * D - M_P                       (Equation 1)
// where S is each candidate's instantaneous provisioning saving ($/hr,
// computed as sum over instances of TNRP - cost), M is the migration cost
// of switching to the candidate ($), and D is how long the configuration
// will last. D is unknown; modeling job arrivals/completions ("events") as
// a Poisson process with rate lambda, and each event triggering a Full
// Reconfiguration with probability p, the expected time to the next Full
// Reconfiguration is
//     D_hat = -1 / (lambda * ln(1 - p)).
// lambda and p are estimated online with exponential moving averages.

#ifndef SRC_CORE_RECONFIG_DECISION_H_
#define SRC_CORE_RECONFIG_DECISION_H_

#include "src/common/units.h"

namespace eva {

// Online estimator for lambda (events/hour) and p (P[event adopts Full]).
class EventRateEstimator {
 public:
  struct Options {
    double initial_events_per_hour = 6.0;
    double initial_full_probability = 0.5;
    double ema_alpha = 0.1;
    double min_probability = 0.02;
    double max_probability = 0.98;
  };

  explicit EventRateEstimator(const Options& options);

  // Reports one scheduling round: how many arrival/completion events were
  // seen since the previous round, the elapsed wall time, and whether the
  // round adopted Full Reconfiguration.
  void RecordRound(int events, SimTime elapsed_s, bool adopted_full);

  double events_per_hour() const { return events_per_hour_; }
  double full_probability() const { return full_probability_; }

  // D_hat in hours.
  double ExpectedConfigurationDurationHours() const;

 private:
  Options options_;
  double events_per_hour_;
  double full_probability_;
};

// Equation 1. All S/M values in dollars-per-hour / dollars; duration in
// hours. Returns true when Full Reconfiguration should be adopted.
bool ShouldAdoptFull(Money saving_full_per_hour, Money saving_partial_per_hour,
                     Money migration_cost_full, Money migration_cost_partial,
                     double expected_duration_hours);

}  // namespace eva

#endif  // SRC_CORE_RECONFIG_DECISION_H_
