// Delta-aware reconfiguration — the incremental counterpart of Algorithm 1.
//
// Reuses the previous round's configuration as the starting incumbent:
// instances none of whose members were touched by the RoundDelta keep their
// task sets (subject to a cost-efficiency recheck against the *current*
// TNRP estimates), while tasks of touched instances plus newly arrived
// tasks are repacked with Algorithm 1's TNRP-greedy. When the delta is
// unknown (complete == false) or touches more than `full_repack_fraction`
// of the task pool, a plain FullReconfiguration runs instead — past that
// point the greedy's global cascade makes instance-local reuse a poor
// approximation.
//
// The output is an approximation of FullReconfiguration: identical when the
// delta is empty, inside the greedy's quality envelope otherwise (kept
// instances are re-verified cost-efficient; repacked tasks go through the
// same greedy). Documented approximation bound, pinned by the end-to-end
// integration test on the 2,000-job Alibaba trace: total provisioning cost
// within 10% of exact Eva's (measured ~5%) and average JCT within 5%
// (measured <1%), with every job still completing. EvaScheduler runs it by
// default for large workloads (EvaOptions::IncrementalPacking::kAuto) under
// a bounded-divergence control loop — periodic exact-repack reconciliation
// plus an auto-escalation policy; small traces (the golden-pinned
// evaluation paths, which require bit-identical configurations) stay on
// exact Algorithm 1, where the exact fast path is the unchanged-round memo
// plus the memoized TNRP caches.

#ifndef SRC_CORE_INCREMENTAL_RECONFIG_H_
#define SRC_CORE_INCREMENTAL_RECONFIG_H_

#include "src/core/full_reconfig.h"
#include "src/sched/reservation_price.h"
#include "src/sched/types.h"

namespace eva {

struct IncrementalOptions {
  PackingOptions packing;

  // Fraction of the task pool the delta may touch before the incremental
  // path falls back to a full repack.
  double full_repack_fraction = 0.25;
};

// How an incremental pack was produced. Every value except kIncremental is
// a fallback to FullReconfiguration; the scheduler counts them per reason
// (SchedulerCounters) and feeds the fallback rate to its EscalationPolicy.
enum class IncrementalOutcome {
  kIncremental,          // Delta-touched repack seeded from `previous`.
  kFullIncompleteDelta,  // delta.complete == false: changes unknown.
  kFullNoPrevious,       // No previous configuration to start from.
  kFullOversizedDelta,   // Delta touched > full_repack_fraction of the pool.
};

inline bool IsFullRepack(IncrementalOutcome outcome) {
  return outcome != IncrementalOutcome::kIncremental;
}

struct IncrementalResult {
  ClusterConfig config;

  // True when the call fell back to FullReconfiguration (unknown or
  // oversized delta, or no previous configuration to start from).
  bool full_repack = false;
  IncrementalOutcome outcome = IncrementalOutcome::kIncremental;
};

// `previous` is the configuration the same scheduler produced last round
// (its task ids may reference completed tasks; those are dropped).
IncrementalResult IncrementalReconfiguration(const SchedulingContext& context,
                                             const TnrpCalculator& calculator,
                                             const ClusterConfig& previous,
                                             const IncrementalOptions& options = {});

// Packs into `out` (storage reused; must not alias `previous` — the kept-
// instance loop reads `previous` while the appender rewrites `out`, so
// aliasing would read half-overwritten state; enforced with an always-on
// check). Returns how the pack was produced; IsFullRepack(outcome) is the
// old full_repack flag.
IncrementalOutcome IncrementalReconfigurationInto(const SchedulingContext& context,
                                                  const TnrpCalculator& calculator,
                                                  const ClusterConfig& previous,
                                                  const IncrementalOptions& options,
                                                  ClusterConfig& out);

}  // namespace eva

#endif  // SRC_CORE_INCREMENTAL_RECONFIG_H_
