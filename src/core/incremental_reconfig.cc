#include "src/core/incremental_reconfig.h"

#include <algorithm>

#include "src/common/arena.h"
#include "src/common/logging.h"
#include "src/common/soa_table.h"

namespace eva {
namespace {

// Per-call scratch, leased per (thread, depth) — the incremental path runs
// on a pool worker concurrently with Partial Reconfiguration. The two
// membership sets are epoch-stamped columns over the dense task-id space:
// O(1) Clear, no per-insert node allocation.
struct IncrementalScratch {
  EpochColumn<char> retargeted;
  EpochColumn<char> kept_tasks;
  std::vector<const TaskInfo*> members;
  std::vector<const TaskInfo*> repack;
};

}  // namespace

IncrementalOutcome IncrementalReconfigurationInto(const SchedulingContext& context,
                                                  const TnrpCalculator& calculator,
                                                  const ClusterConfig& previous,
                                                  const IncrementalOptions& options,
                                                  ClusterConfig& out) {
  EVA_CHECK(&out != &previous, "out must not alias previous");
  const RoundDelta& delta = context.delta;
  const std::size_t pool_size = std::max<std::size_t>(1, context.tasks.size());
  const bool oversized = static_cast<double>(delta.TouchedCount()) >
                         options.full_repack_fraction * static_cast<double>(pool_size);
  if (!delta.complete || previous.instances.empty() || oversized) {
    FullReconfigurationInto(context, calculator, options.packing, out);
    return !delta.complete          ? IncrementalOutcome::kFullIncompleteDelta
           : previous.instances.empty() ? IncrementalOutcome::kFullNoPrevious
                                        : IncrementalOutcome::kFullOversizedDelta;
  }

  ScratchLease<IncrementalScratch> scratch;
  EpochColumn<char>& retargeted = scratch->retargeted;
  retargeted.Clear();
  for (TaskId id : delta.tasks_retargeted) {
    if (id >= 0) {
      retargeted.Touch(static_cast<std::size_t>(id)) = 1;
    }
  }

  ConfigAppender appender(out.instances);

  // Keep previous instances whose membership survived the delta untouched
  // and whose task set still covers its cost under the current estimates.
  EpochColumn<char>& kept_tasks = scratch->kept_tasks;
  kept_tasks.Clear();
  std::vector<const TaskInfo*>& members = scratch->members;
  for (const ConfigInstance& instance : previous.instances) {
    members.clear();
    bool touched = false;
    for (TaskId id : instance.tasks) {
      const TaskInfo* task = context.FindTask(id);
      if (task == nullptr || (id >= 0 && retargeted.Contains(static_cast<std::size_t>(id)))) {
        touched = true;  // Completed or migrated since last round.
        break;
      }
      members.push_back(task);
    }
    if (touched || members.empty()) {
      continue;  // Members (if any) fall through to the repack pool.
    }
    const InstanceType& type = context.catalog->Get(instance.type_index);
    const Money cost = type.cost_per_hour;
    if (calculator.SetTnrp(members, type.family) +
            options.packing.cost_epsilon * cost <
        cost) {
      continue;  // No longer cost-efficient; release and repack.
    }
    ConfigInstance& kept = appender.Append();
    kept.type_index = instance.type_index;
    kept.reuse_instance = instance.reuse_instance;
    kept.tasks = instance.tasks;
    // Pin the kept set to the instance actually hosting it, so the differ
    // cannot shuffle task sets between same-typed instances.
    const InstanceId common = members.front()->current_instance;
    if (common != kInvalidInstanceId) {
      bool all_same = true;
      for (const TaskInfo* member : members) {
        all_same = all_same && member->current_instance == common;
      }
      const InstanceInfo* host = all_same ? context.FindInstance(common) : nullptr;
      if (host != nullptr && host->type_index == instance.type_index) {
        kept.reuse_instance = common;
      }
    }
    for (TaskId id : kept.tasks) {
      if (id >= 0) {
        kept_tasks.Touch(static_cast<std::size_t>(id)) = 1;
      }
    }
  }

  // Everything not kept — arrivals, evictees of touched or inefficient
  // instances — goes through Algorithm 1's greedy.
  std::vector<const TaskInfo*>& repack = scratch->repack;
  repack.clear();
  for (const TaskInfo& task : context.tasks) {
    if (!kept_tasks.Contains(static_cast<std::size_t>(task.id))) {
      repack.push_back(&task);
    }
  }
  PackByReservationPriceInto(context, calculator, repack, options.packing, appender,
                             /*unassigned=*/nullptr);
  appender.Finish();
  return IncrementalOutcome::kIncremental;
}

IncrementalResult IncrementalReconfiguration(const SchedulingContext& context,
                                             const TnrpCalculator& calculator,
                                             const ClusterConfig& previous,
                                             const IncrementalOptions& options) {
  IncrementalResult result;
  result.outcome =
      IncrementalReconfigurationInto(context, calculator, previous, options, result.config);
  result.full_repack = IsFullRepack(result.outcome);
  return result;
}

}  // namespace eva
