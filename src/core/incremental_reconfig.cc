#include "src/core/incremental_reconfig.h"

#include <algorithm>
#include <unordered_set>

namespace eva {

IncrementalResult IncrementalReconfiguration(const SchedulingContext& context,
                                             const TnrpCalculator& calculator,
                                             const ClusterConfig& previous,
                                             const IncrementalOptions& options) {
  IncrementalResult result;
  const RoundDelta& delta = context.delta;
  const std::size_t pool_size = std::max<std::size_t>(1, context.tasks.size());
  if (!delta.complete || previous.instances.empty() ||
      static_cast<double>(delta.TouchedCount()) >
          options.full_repack_fraction * static_cast<double>(pool_size)) {
    result.full_repack = true;
    result.config = FullReconfiguration(context, calculator, options.packing);
    return result;
  }

  const std::unordered_set<TaskId> retargeted(delta.tasks_retargeted.begin(),
                                              delta.tasks_retargeted.end());

  // Keep previous instances whose membership survived the delta untouched
  // and whose task set still covers its cost under the current estimates.
  std::unordered_set<TaskId> kept_tasks;
  std::vector<const TaskInfo*> members;
  for (const ConfigInstance& instance : previous.instances) {
    members.clear();
    bool touched = false;
    for (TaskId id : instance.tasks) {
      const TaskInfo* task = context.FindTask(id);
      if (task == nullptr || retargeted.count(id) > 0) {
        touched = true;  // Completed or migrated since last round.
        break;
      }
      members.push_back(task);
    }
    if (touched || members.empty()) {
      continue;  // Members (if any) fall through to the repack pool.
    }
    const InstanceType& type = context.catalog->Get(instance.type_index);
    const Money cost = type.cost_per_hour;
    if (calculator.SetTnrp(members, type.family) +
            options.packing.cost_epsilon * cost <
        cost) {
      continue;  // No longer cost-efficient; release and repack.
    }
    ConfigInstance kept;
    kept.type_index = instance.type_index;
    kept.reuse_instance = instance.reuse_instance;
    kept.tasks = instance.tasks;
    // Pin the kept set to the instance actually hosting it, so the differ
    // cannot shuffle task sets between same-typed instances.
    const InstanceId common = members.front()->current_instance;
    if (common != kInvalidInstanceId) {
      bool all_same = true;
      for (const TaskInfo* member : members) {
        all_same = all_same && member->current_instance == common;
      }
      const InstanceInfo* host = all_same ? context.FindInstance(common) : nullptr;
      if (host != nullptr && host->type_index == instance.type_index) {
        kept.reuse_instance = common;
      }
    }
    for (TaskId id : kept.tasks) {
      kept_tasks.insert(id);
    }
    result.config.instances.push_back(std::move(kept));
  }

  // Everything not kept — arrivals, evictees of touched or inefficient
  // instances — goes through Algorithm 1's greedy.
  std::vector<const TaskInfo*> repack;
  for (const TaskInfo& task : context.tasks) {
    if (kept_tasks.count(task.id) == 0) {
      repack.push_back(&task);
    }
  }
  PackingResult packed =
      PackByReservationPrice(context, calculator, std::move(repack), options.packing);
  for (ConfigInstance& instance : packed.instances) {
    result.config.instances.push_back(std::move(instance));
  }
  return result;
}

}  // namespace eva
