// Partial Reconfiguration (§4.5).
//
// Preserves the bulk of the current cluster configuration and re-packs only
//   (a) tasks from recently submitted jobs not yet assigned to an instance,
//   (b) tasks on instances that are no longer cost-efficient, i.e. whose
//       set TNRP has dropped below the instance's hourly cost (job
//       completions or newly learned interference can cause this).
// The re-packed subset goes through Algorithm 1; all other instances are
// kept verbatim (with reuse ids so the differ performs no action on them).

#ifndef SRC_CORE_PARTIAL_RECONFIG_H_
#define SRC_CORE_PARTIAL_RECONFIG_H_

#include "src/core/full_reconfig.h"
#include "src/sched/reservation_price.h"
#include "src/sched/types.h"

namespace eva {

// Packs into `out`, reusing its storage (capacity kept round over round).
void PartialReconfigurationInto(const SchedulingContext& context,
                                const TnrpCalculator& calculator,
                                const PackingOptions& options, ClusterConfig& out);

ClusterConfig PartialReconfiguration(const SchedulingContext& context,
                                     const TnrpCalculator& calculator,
                                     const PackingOptions& options = {});

}  // namespace eva

#endif  // SRC_CORE_PARTIAL_RECONFIG_H_
