// Full Reconfiguration — Algorithm 1 of the paper (§4.2), generalized to
// throughput-normalized reservation price (§4.3).
//
// The algorithm walks instance types in descending hourly cost. For each
// type it repeatedly opens a fresh instance and greedily fills it with the
// unassigned task maximizing the set's TNRP, stopping early if adding the
// best candidate would *decrease* the set TNRP (possible under severe
// interference or multi-task straggler penalties). The instance is kept only
// if the set's TNRP covers the instance's hourly cost; otherwise the
// algorithm moves on to the next cheaper type.

#ifndef SRC_CORE_FULL_RECONFIG_H_
#define SRC_CORE_FULL_RECONFIG_H_

#include <cstddef>
#include <vector>

#include "src/sched/reservation_price.h"
#include "src/sched/types.h"

namespace eva {

class ThreadPool;

struct PackingResult {
  std::vector<ConfigInstance> instances;

  // Tasks the greedy pass could not place cost-efficiently. With the
  // safety-net pass enabled (the default) this is always empty: each
  // leftover task is placed alone on its reservation-price instance, which
  // is cost-efficient by definition.
  std::vector<TaskId> unassigned;
};

struct PackingOptions {
  // Relative slack on the cost-efficiency test TNRP(T) >= C_k, avoiding
  // spurious rejections from floating-point noise.
  double cost_epsilon = 1e-9;

  // Place greedy leftovers on their standalone RP instances.
  bool assign_leftovers_standalone = true;

  // The VSBPP heuristic's downsizing step: after a task set is accepted on
  // an instance type, switch to the cheapest type that still fits the set.
  // Never increases cost, so cost-efficiency is preserved.
  bool shrink_to_cheapest_type = true;

  // When set (and the pool has >1 worker), the candidate argmax and the
  // downsizing step fan out onto this pool. The parallel reductions pick
  // the same element as the serial scans (earliest index among exact-tie
  // maxima), so the returned configuration is bit-identical either way.
  ThreadPool* pool = nullptr;

  // Candidate-count floor below which the argmax stays serial (fan-out
  // overhead would dominate).
  std::size_t parallel_min_candidates = 48;
};

// Cursor-based appender over an existing ConfigInstance vector. Append()
// hands back a recycled slot (its tasks vector keeps capacity), Finish()
// trims slots not consumed this round. This is what lets the per-round
// packing write into persistent storage with zero steady-state allocations.
class ConfigAppender {
 public:
  explicit ConfigAppender(std::vector<ConfigInstance>& out) : out_(out) {}

  ConfigInstance& Append() {
    if (used_ < out_.size()) {
      ConfigInstance& slot = out_[used_++];
      slot.type_index = -1;
      slot.reuse_instance = kInvalidInstanceId;
      slot.tasks.clear();
      return slot;
    }
    out_.emplace_back();
    ++used_;
    return out_.back();
  }

  ConfigInstance& operator[](std::size_t i) { return out_[i]; }
  std::size_t used() const { return used_; }
  void Finish() { out_.resize(used_); }

 private:
  std::vector<ConfigInstance>& out_;
  std::size_t used_ = 0;
};

// Runs Algorithm 1 over `pool` (tasks to place; sorted in place). Emits the
// packed instances through `out` — instances carry no reuse ids; callers
// layering Partial Reconfiguration add them. Leftover tasks the greedy could
// not place are appended to `unassigned` when non-null (always empty with
// assign_leftovers_standalone; silently left pending otherwise).
void PackByReservationPriceInto(const SchedulingContext& context,
                                const TnrpCalculator& calculator,
                                std::vector<const TaskInfo*>& pool,
                                const PackingOptions& options, ConfigAppender& out,
                                std::vector<TaskId>* unassigned);

// Value-returning convenience wrapper (tests, benches, one-shot callers).
PackingResult PackByReservationPrice(const SchedulingContext& context,
                                     const TnrpCalculator& calculator,
                                     std::vector<const TaskInfo*> pool,
                                     const PackingOptions& options = {});

// The Full Reconfiguration entry point: packs *all* tasks in the context
// into `out`, reusing its storage (cleared semantically, capacity kept).
void FullReconfigurationInto(const SchedulingContext& context,
                             const TnrpCalculator& calculator,
                             const PackingOptions& options, ClusterConfig& out);

ClusterConfig FullReconfiguration(const SchedulingContext& context,
                                  const TnrpCalculator& calculator,
                                  const PackingOptions& options = {});

}  // namespace eva

#endif  // SRC_CORE_FULL_RECONFIG_H_
