#include "src/core/reconfig_decision.h"

#include <algorithm>
#include <cmath>

namespace eva {

EventRateEstimator::EventRateEstimator(const Options& options)
    : options_(options),
      events_per_hour_(options.initial_events_per_hour),
      full_probability_(options.initial_full_probability) {}

void EventRateEstimator::RecordRound(int events, SimTime elapsed_s, bool adopted_full) {
  if (elapsed_s > 0.0) {
    const double observed_rate = static_cast<double>(events) / SecondsToHours(elapsed_s);
    events_per_hour_ = options_.ema_alpha * observed_rate +
                       (1.0 - options_.ema_alpha) * events_per_hour_;
  }
  // p is the per-event probability of triggering a Full Reconfiguration;
  // attribute this round's adoption outcome to each event it contained.
  for (int i = 0; i < events; ++i) {
    full_probability_ = options_.ema_alpha * (adopted_full ? 1.0 : 0.0) +
                        (1.0 - options_.ema_alpha) * full_probability_;
  }
  full_probability_ =
      std::clamp(full_probability_, options_.min_probability, options_.max_probability);
}

double EventRateEstimator::ExpectedConfigurationDurationHours() const {
  const double lambda = std::max(events_per_hour_, 1e-6);
  const double p = std::clamp(full_probability_, options_.min_probability,
                              options_.max_probability);
  // D_hat = -1 / (lambda * ln(1 - p)); ln(1-p) < 0 so D_hat > 0.
  return -1.0 / (lambda * std::log(1.0 - p));
}

bool ShouldAdoptFull(Money saving_full_per_hour, Money saving_partial_per_hour,
                     Money migration_cost_full, Money migration_cost_partial,
                     double expected_duration_hours) {
  const Money net_full = saving_full_per_hour * expected_duration_hours - migration_cost_full;
  const Money net_partial =
      saving_partial_per_hour * expected_duration_hours - migration_cost_partial;
  return net_full > net_partial;
}

}  // namespace eva
