#include "src/core/reconfig_decision.h"

#include <algorithm>
#include <cmath>

namespace eva {

EventRateEstimator::EventRateEstimator(const Options& options)
    : options_(options),
      events_per_hour_(options.initial_events_per_hour),
      full_probability_(options.initial_full_probability) {}

void EventRateEstimator::RecordRound(int events, SimTime elapsed_s, bool adopted_full) {
  if (elapsed_s > 0.0) {
    const double observed_rate = static_cast<double>(events) / SecondsToHours(elapsed_s);
    events_per_hour_ = options_.ema_alpha * observed_rate +
                       (1.0 - options_.ema_alpha) * events_per_hour_;
  }
  // p is the per-event probability of triggering a Full Reconfiguration;
  // attribute this round's adoption outcome to each event it contained.
  for (int i = 0; i < events; ++i) {
    full_probability_ = options_.ema_alpha * (adopted_full ? 1.0 : 0.0) +
                        (1.0 - options_.ema_alpha) * full_probability_;
  }
  full_probability_ =
      std::clamp(full_probability_, options_.min_probability, options_.max_probability);
}

double EventRateEstimator::ExpectedConfigurationDurationHours() const {
  const double lambda = std::max(events_per_hour_, 1e-6);
  const double p = std::clamp(full_probability_, options_.min_probability,
                              options_.max_probability);
  // D_hat = -1 / (lambda * ln(1 - p)); ln(1-p) < 0 so D_hat > 0.
  return -1.0 / (lambda * std::log(1.0 - p));
}

EscalationPolicy::EscalationPolicy(const Options& options) : options_(options) {}

void EscalationPolicy::Escalate() {
  escalated_ = true;
  hold_ = 0;
  ++escalations_;
}

void EscalationPolicy::MaybeDeescalate() {
  if (hold_ >= options_.min_hold_packs && !divergence_high_) {
    escalated_ = false;
    hold_ = 0;
    fallback_rate_ = 0.0;  // Fresh observation window for the new regime.
  }
}

void EscalationPolicy::RecordPack(bool fell_back) {
  if (escalated_) {
    ++hold_;
    MaybeDeescalate();
    return;
  }
  fallback_rate_ = options_.fallback_ema_alpha * (fell_back ? 1.0 : 0.0) +
                   (1.0 - options_.fallback_ema_alpha) * fallback_rate_;
  if (fallback_rate_ > options_.fallback_rate_enter) {
    Escalate();
  }
}

void EscalationPolicy::RecordDivergence(double cost_divergence) {
  last_divergence_ = cost_divergence;
  if (cost_divergence >= options_.divergence_enter) {
    divergence_high_ = true;
    if (!escalated_) {
      Escalate();
    }
  } else if (cost_divergence <= options_.divergence_exit) {
    divergence_high_ = false;
    MaybeDeescalate();
  }
  // Between exit and enter: the hysteresis band — state unchanged.
}

bool ShouldAdoptFull(Money saving_full_per_hour, Money saving_partial_per_hour,
                     Money migration_cost_full, Money migration_cost_partial,
                     double expected_duration_hours) {
  const Money net_full = saving_full_per_hour * expected_duration_hours - migration_cost_full;
  const Money net_partial =
      saving_partial_per_hour * expected_duration_hours - migration_cost_partial;
  return net_full > net_partial;
}

}  // namespace eva
