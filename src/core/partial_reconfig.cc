#include "src/core/partial_reconfig.h"

#include <unordered_set>

namespace eva {

ClusterConfig PartialReconfiguration(const SchedulingContext& context,
                                     const TnrpCalculator& calculator,
                                     const PackingOptions& options) {
  ClusterConfig config;
  std::vector<const TaskInfo*> pool;

  // (a) Unassigned tasks from recently submitted jobs.
  for (const TaskInfo& task : context.tasks) {
    if (task.current_instance == kInvalidInstanceId) {
      pool.push_back(&task);
    }
  }

  // (b) Tasks on instances that are no longer cost-efficient; those
  // instances are released. Every other instance is kept unchanged.
  for (const InstanceInfo& instance : context.instances) {
    std::vector<const TaskInfo*> members;
    for (TaskId task_id : instance.tasks) {
      if (const TaskInfo* task = context.FindTask(task_id)) {
        members.push_back(task);
      }
    }
    const InstanceType& type = context.catalog->Get(instance.type_index);
    const Money cost = type.cost_per_hour;
    const bool cost_efficient =
        !members.empty() &&
        calculator.SetTnrp(members, type.family) + options.cost_epsilon * cost >= cost;
    if (cost_efficient) {
      ConfigInstance kept;
      kept.type_index = instance.type_index;
      kept.reuse_instance = instance.id;
      kept.tasks = instance.tasks;
      config.instances.push_back(std::move(kept));
    } else {
      for (const TaskInfo* member : members) {
        pool.push_back(member);
      }
    }
  }

  PackingResult packed = PackByReservationPrice(context, calculator, std::move(pool), options);
  for (ConfigInstance& instance : packed.instances) {
    config.instances.push_back(std::move(instance));
  }
  return config;
}

}  // namespace eva
