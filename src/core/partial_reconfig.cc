#include "src/core/partial_reconfig.h"

#include "src/common/arena.h"

namespace eva {
namespace {

// Per-call scratch, leased per (thread, depth): Partial Reconfiguration runs
// every changed round (often concurrently with Full on a pool worker).
struct PartialScratch {
  std::vector<const TaskInfo*> pool;
  std::vector<const TaskInfo*> members;
};

}  // namespace

void PartialReconfigurationInto(const SchedulingContext& context,
                                const TnrpCalculator& calculator,
                                const PackingOptions& options, ClusterConfig& out) {
  ScratchLease<PartialScratch> scratch;
  std::vector<const TaskInfo*>& pool = scratch->pool;
  std::vector<const TaskInfo*>& members = scratch->members;
  pool.clear();
  ConfigAppender appender(out.instances);

  // (a) Unassigned tasks from recently submitted jobs.
  for (const TaskInfo& task : context.tasks) {
    if (task.current_instance == kInvalidInstanceId) {
      pool.push_back(&task);
    }
  }

  // (b) Tasks on instances that are no longer cost-efficient; those
  // instances are released. Every other instance is kept unchanged.
  for (const InstanceInfo& instance : context.instances) {
    members.clear();
    for (TaskId task_id : instance.tasks) {
      if (const TaskInfo* task = context.FindTask(task_id)) {
        members.push_back(task);
      }
    }
    const InstanceType& type = context.catalog->Get(instance.type_index);
    const Money cost = type.cost_per_hour;
    const bool cost_efficient =
        !members.empty() &&
        calculator.SetTnrp(members, type.family) + options.cost_epsilon * cost >= cost;
    if (cost_efficient) {
      ConfigInstance& kept = appender.Append();
      kept.type_index = instance.type_index;
      kept.reuse_instance = instance.id;
      kept.tasks = instance.tasks;
    } else {
      for (const TaskInfo* member : members) {
        pool.push_back(member);
      }
    }
  }

  PackByReservationPriceInto(context, calculator, pool, options, appender,
                             /*unassigned=*/nullptr);
  appender.Finish();
}

ClusterConfig PartialReconfiguration(const SchedulingContext& context,
                                     const TnrpCalculator& calculator,
                                     const PackingOptions& options) {
  ClusterConfig config;
  PartialReconfigurationInto(context, calculator, options, config);
  return config;
}

}  // namespace eva
