// EvaScheduler — the paper's scheduler (§3-§4), tying together Algorithm 1,
// Partial Reconfiguration, the online throughput table, and the
// reconfiguration decision criterion.
//
// Each scheduling round the scheduler computes both candidate
// configurations, prices their savings and migration overhead, estimates
// the expected configuration lifetime D_hat, and adopts Full
// Reconfiguration only when Equation 1 favors it. Configurable ablations
// reproduce the paper's variants: Eva-RP (interference-oblivious),
// Eva-Single (multi-task-oblivious), Eva w/o Full Reconfig, and Full-only.
//
// The decision path is delta-incremental across rounds, bit-identically:
//   * one persistent TnrpCalculator memoizes RP and TNRP across rounds,
//     invalidated per workload row by new throughput observations;
//   * a round memo replays the previous round's candidate configurations
//     (and, in ensemble mode, their savings/migration prices) verbatim when
//     nothing decision-relevant changed — the common quiescent round;
//   * Full and Partial Reconfiguration run concurrently on a thread pool,
//     which also fans out the packing's inner argmax and downsizing scans.
// The incremental fast path (incremental_packing — on by default for
// workloads of >= incremental_auto_min_jobs jobs, see IncrementalPacking)
// replaces Full Reconfiguration with delta-touched repacking via
// IncrementalReconfiguration, bounded by a control loop: every
// reconcile_every_n_packs packs (and on demand) the exact repack runs
// alongside the incumbent, divergence is measured (cost delta, config edit
// distance, staleness) and the exact result adopted; an EscalationPolicy
// with hysteresis forces exact packing when divergence or the fallback rate
// spikes. All counters are exported through Scheduler::ExportCounters.

#ifndef SRC_CORE_EVA_SCHEDULER_H_
#define SRC_CORE_EVA_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/cloud/delays.h"
#include "src/common/soa_table.h"
#include "src/common/thread_pool.h"
#include "src/core/reconfig_decision.h"
#include "src/core/throughput_monitor.h"
#include "src/sched/config_diff.h"
#include "src/sched/reservation_price.h"
#include "src/sched/scheduler.h"

namespace eva {

struct PackingOptions;  // full_reconfig.h — referenced by the pack helpers.

struct EvaOptions {
  // Which reconfiguration algorithms may be adopted.
  enum class Policy {
    kEnsemble,     // Eva: choose per Equation 1.
    kFullOnly,     // Ablation of Figure 5b ("Eva w/ Full Reconfig only").
    kPartialOnly,  // Ablation of Figure 6 ("Eva w/o Full Reconfig").
  };

  Policy policy = Policy::kEnsemble;
  TnrpCalculator::Options tnrp;  // interference_aware -> TNRP vs RP,
                                 // multi_task_aware -> Eva vs Eva-Single.

  // Default pairwise throughput t for unobserved co-locations (§4.3).
  double default_pairwise_throughput = 0.95;

  CloudDelayModel cloud_delays;
  double migration_delay_multiplier = 1.0;

  EventRateEstimator::Options estimator;

  // --- Decision-path performance knobs (bit-identical results) ----------
  // Replay the previous round's candidates when the decision inputs (task
  // set, placements, instances, throughput table) are unchanged.
  bool reuse_unchanged_rounds = true;

  // Absorb engine-certified quiescent rounds without being invoked at all
  // (see Scheduler::CoalesceQuiescentRounds): the round memo is promoted
  // from "replay cheaply" to "never wake the scheduler". Per absorbed round
  // the estimator/statistics updates a memo-replayed Schedule call would
  // have made are applied verbatim, so the decision trajectory — including
  // the exact round at which drifting D_hat flips the Full-vs-Partial
  // choice — is bit-identical. Requires reuse_unchanged_rounds.
  bool coalesce_quiescent_rounds = true;

  // Worker threads for the decision path: 0 = hardware concurrency,
  // 1 = serial, n > 1 = exactly n. A pool is spun up only when > 1.
  int max_parallelism = 0;

  // --- Approximate incremental packing (changes configurations) --------
  // Replace Full Reconfiguration with delta-touched repacking seeded from
  // the previous round's configuration (see incremental_reconfig.h),
  // bounded by periodic exact-repack reconciliation and the auto-escalation
  // policy below. kAuto — the default — turns the fast path on only when
  // the bound workload (Scheduler::BindWorkloadScale) reaches
  // `incremental_auto_min_jobs`: small traces (the golden-pinned evaluation
  // paths) keep the exact Algorithm 1 output every round bit-identically,
  // large traces get the production fast path.
  enum class IncrementalPacking {
    kAuto,  // On iff the bound workload has >= incremental_auto_min_jobs.
    kOff,   // Exact Algorithm 1 every round.
    kOn,    // Always on, regardless of workload scale.
  };
  IncrementalPacking incremental_packing = IncrementalPacking::kAuto;
  std::size_t incremental_auto_min_jobs = 10000;
  double incremental_full_repack_fraction = 0.25;

  // Bounded-divergence reconciliation cadence: after this many consecutive
  // packs without a known-exact incumbent, run FullReconfiguration alongside
  // the incremental result, measure the divergence (cost delta, config edit
  // distance) and adopt the exact configuration. Counted in *packs* — actual
  // ComputeCandidates invocations — not rounds: memo-replayed and coalesced
  // rounds reproduce the incumbent verbatim, so divergence cannot change
  // there, and the cadence stays deterministic under batching and across
  // pool sizes. <= 0 disables periodic reconciliation (on-demand still
  // works).
  int reconcile_every_n_packs = 64;

  // Auto-escalation thresholds (see EscalationPolicy).
  EscalationPolicy::Options escalation;

  // Custom display name; empty derives one from the options.
  std::string name;
};

class EvaScheduler : public Scheduler {
 public:
  struct Stats {
    int rounds = 0;
    int full_adopted = 0;
    int events_seen = 0;

    // Decision-path accounting: rounds replayed from the memo, why the
    // others were not, and how their Full candidate was produced.
    int rounds_reused = 0;
    int reuse_miss_table = 0;    // Throughput table changed.
    int reuse_miss_context = 0;  // Task set / placements / instances changed.
    int full_packs = 0;
    int incremental_packs = 0;

    // Subset of rounds_reused absorbed via CoalesceQuiescentRounds — rounds
    // for which the scheduler was never even invoked.
    int rounds_coalesced = 0;
  };

  explicit EvaScheduler(EvaOptions options = {});

  std::string name() const override;
  ClusterConfig Schedule(const SchedulingContext& context) override;
  void ScheduleInto(const SchedulingContext& context, ClusterConfig& out) override;
  void ObserveThroughput(const std::vector<JobThroughputObservation>& observations) override;
  int CoalesceQuiescentRounds(int max_rounds, SimTime period_s) override;
  void BindWorkloadScale(std::size_t expected_jobs) override;
  void ExportCounters(SchedulerCounters& out) const override;
  // Span sink for the decision path (pack mode, reconciliations,
  // escalations), stamped at context.now_s. Only the Full-candidate branch
  // emits — the Partial branch may run concurrently on the pool, and one
  // emitter per track is the determinism contract (see TraceRecorder).
  void BindTrace(const TraceBinding& binding) override { trace_ = binding; }

  // On-demand reconciliation: the next incremental pack runs the exact
  // repack alongside, measures divergence, and adopts the exact result —
  // regardless of where the periodic cadence stands. No-op in exact mode.
  void RequestReconciliation() { reconcile_requested_ = true; }

  // Whether the incremental fast path is live for this run (kOn, or kAuto
  // resolved against the bound workload scale).
  bool incremental_active() const { return incremental_active_; }

  const SchedulerCounters& counters() const { return counters_; }
  const EscalationPolicy& escalation() const { return escalation_; }
  const Stats& stats() const { return stats_; }
  const ThroughputTable& throughput_table() const { return monitor_.table(); }
  const EventRateEstimator& event_estimator() const { return estimator_; }
  const TnrpCalculator::CacheStats* tnrp_cache_stats() const {
    return calculator_ != nullptr ? &calculator_->cache_stats() : nullptr;
  }

 private:
  // Arrivals + completions since the previous round: straight off the
  // RoundDelta when the producer tracks one, otherwise by diffing the
  // active-job set against the previous round's.
  int CountJobEvents(const SchedulingContext& context);

  // True when `context` matches the memoized round on every field the
  // candidate configurations depend on (now_s and remaining-runtime
  // estimates deliberately excluded — the packing never reads them).
  bool SameDecisionInputs(const SchedulingContext& context) const;

  // Computes the candidate configurations for `context` into memo_,
  // fanning out on pool_ when available.
  void ComputeCandidates(const SchedulingContext& context);

  // Computes the round's Full candidate into work_full_ — exact, or via the
  // incremental fast path with fallback/escalation/reconciliation
  // accounting. `packing` is the round's packing options.
  void ComputeFullCandidate(const SchedulingContext& context, const PackingOptions& packing);

  // Bounded-divergence reconciliation: runs FullReconfiguration alongside
  // the incremental candidate already in work_full_, measures divergence,
  // feeds the escalation policy, and swaps the exact result into work_full_.
  void Reconcile(const SchedulingContext& context, const PackingOptions& packing);

  // The incumbent candidate in work_full_ is known exact: staleness resets
  // and the policy truthfully observes zero divergence.
  void NoteExactIncumbent();

  // The whole per-round decision (memo reuse, candidate computation,
  // Equation 1, estimator bookkeeping); returns whether Full was adopted.
  // Schedule/ScheduleInto only differ in how they hand out the winner.
  bool DecideRound(const SchedulingContext& context);

  EvaOptions options_;
  ThroughputMonitor monitor_;
  EventRateEstimator estimator_;
  Stats stats_;

  // --- Incremental fast-path control loop ------------------------------
  // kOn resolves at construction; kAuto at BindWorkloadScale. All state
  // below advances only inside ComputeFullCandidate — exactly once per
  // computed pack, never on memo-replayed or coalesced rounds — so the
  // reconciliation cadence and escalation trajectory are deterministic
  // under batching and across pool sizes.
  bool incremental_active_ = false;
  EscalationPolicy escalation_;
  SchedulerCounters counters_;
  int packs_since_reconcile_ = 0;  // Packs with a possibly-inexact incumbent.
  bool reconcile_requested_ = false;
  ClusterConfig reconcile_exact_;  // Exact-repack buffer (capacity reused).

  // Span sink on the owning simulator's track; unbound (null recorder)
  // unless the run enabled tracing.
  TraceBinding trace_;

  // Active-job id set carried between rounds: flat sorted storage with
  // std::set iteration order, mutated O(delta) per round without per-node
  // allocation.
  IdSet<JobId> last_jobs_;
  SimTime last_round_time_ = -1.0;

  // Whether the last ObserveThroughput call changed any table entry. When it
  // did not, re-delivering the identical observations is provably a no-op
  // (Observe is a deterministic function of table state and observations),
  // which is what licenses absorbing quiescent rounds without running it.
  bool last_observe_changed_ = true;

  // The Full-vs-Partial choice of the last invoked round — the candidate
  // whose configuration is currently applied. A quiescent round whose
  // replayed decision differs must run live (it would reconfigure).
  bool last_adopt_full_ = false;

  // Persistent calculator; bound to the caller's context for the duration
  // of each Schedule call (rebound at entry, never dereferenced between
  // calls) and permanently to the monitor's table as estimator — which is
  // why Schedule does not copy the context.
  std::unique_ptr<TnrpCalculator> calculator_;
  std::unique_ptr<ThreadPool> pool_;
  bool pool_resolved_ = false;

  // Previous round's decision-relevant inputs and outputs.
  struct RoundMemo {
    bool valid = false;
    std::uint64_t table_version = 0;
    // Catalog the candidates were priced against (identity only, never
    // dereferenced). The spot tier delivers a fresh quote catalog every
    // round, which must defeat the memo; stable-catalog runs always match.
    const InstanceCatalog* catalog = nullptr;
    std::vector<TaskInfo> tasks;
    std::vector<InstanceInfo> instances;
    ClusterConfig full;
    ClusterConfig partial;
    bool savings_valid = false;
    Money saving_full = 0.0;
    Money saving_partial = 0.0;
    Money migration_full = 0.0;
    Money migration_partial = 0.0;
  };
  RoundMemo memo_;

  // Double-buffered candidate storage: ComputeCandidates packs into these
  // via the -Into packers, then swaps them with the memo's configs, so both
  // buffers' capacity is reused round over round (the incremental path reads
  // memo_.full while the new Full candidate is being written).
  ClusterConfig work_full_;
  ClusterConfig work_partial_;

  // Scratch for the ensemble's migration pricing (DiffConfigInto).
  ConfigDiff pricing_diff_;
};

}  // namespace eva

#endif  // SRC_CORE_EVA_SCHEDULER_H_
