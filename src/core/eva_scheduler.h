// EvaScheduler — the paper's scheduler (§3-§4), tying together Algorithm 1,
// Partial Reconfiguration, the online throughput table, and the
// reconfiguration decision criterion.
//
// Each scheduling round the scheduler computes both candidate
// configurations, prices their savings and migration overhead, estimates
// the expected configuration lifetime D_hat, and adopts Full
// Reconfiguration only when Equation 1 favors it. Configurable ablations
// reproduce the paper's variants: Eva-RP (interference-oblivious),
// Eva-Single (multi-task-oblivious), Eva w/o Full Reconfig, and Full-only.

#ifndef SRC_CORE_EVA_SCHEDULER_H_
#define SRC_CORE_EVA_SCHEDULER_H_

#include <set>
#include <string>

#include "src/cloud/delays.h"
#include "src/core/reconfig_decision.h"
#include "src/core/throughput_monitor.h"
#include "src/sched/reservation_price.h"
#include "src/sched/scheduler.h"

namespace eva {

struct EvaOptions {
  // Which reconfiguration algorithms may be adopted.
  enum class Policy {
    kEnsemble,     // Eva: choose per Equation 1.
    kFullOnly,     // Ablation of Figure 5b ("Eva w/ Full Reconfig only").
    kPartialOnly,  // Ablation of Figure 6 ("Eva w/o Full Reconfig").
  };

  Policy policy = Policy::kEnsemble;
  TnrpCalculator::Options tnrp;  // interference_aware -> TNRP vs RP,
                                 // multi_task_aware -> Eva vs Eva-Single.

  // Default pairwise throughput t for unobserved co-locations (§4.3).
  double default_pairwise_throughput = 0.95;

  CloudDelayModel cloud_delays;
  double migration_delay_multiplier = 1.0;

  EventRateEstimator::Options estimator;

  // Custom display name; empty derives one from the options.
  std::string name;
};

class EvaScheduler : public Scheduler {
 public:
  struct Stats {
    int rounds = 0;
    int full_adopted = 0;
    int events_seen = 0;
  };

  explicit EvaScheduler(EvaOptions options = {});

  std::string name() const override;
  ClusterConfig Schedule(const SchedulingContext& context) override;
  void ObserveThroughput(const std::vector<JobThroughputObservation>& observations) override;

  const Stats& stats() const { return stats_; }
  const ThroughputTable& throughput_table() const { return monitor_.table(); }
  const EventRateEstimator& event_estimator() const { return estimator_; }

 private:
  int CountJobEvents(const SchedulingContext& context);

  EvaOptions options_;
  ThroughputMonitor monitor_;
  EventRateEstimator estimator_;
  Stats stats_;

  std::set<JobId> last_jobs_;
  SimTime last_round_time_ = -1.0;
};

}  // namespace eva

#endif  // SRC_CORE_EVA_SCHEDULER_H_
