#include "src/core/throughput_monitor.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "src/common/arena.h"

namespace eva {
namespace {

// Per-call scratch (see common/arena.h): ObserveJob runs once per job per
// observation window, and its two gather lists must not allocate at steady
// state.
struct ObserveScratch {
  struct Candidate {
    const TaskPlacementObservation* task;
    std::optional<double> recorded;
  };
  std::vector<const TaskPlacementObservation*> colocated_tasks;
  std::vector<Candidate> candidates;
};

}  // namespace

ThroughputMonitor::ThroughputMonitor(double default_pairwise) : table_(default_pairwise) {}

int ThroughputMonitor::Observe(const std::vector<JobThroughputObservation>& observations) {
  int changed = 0;
  for (const JobThroughputObservation& observation : observations) {
    changed += ObserveJob(observation) ? 1 : 0;
  }
  return changed;
}

bool ThroughputMonitor::ObserveJob(const JobThroughputObservation& observation) {
  ScratchLease<ObserveScratch> scratch;
  // Only co-located tasks can be blamed for interference.
  std::vector<const TaskPlacementObservation*>& colocated_tasks = scratch->colocated_tasks;
  colocated_tasks.clear();
  for (const TaskPlacementObservation& task : observation.tasks) {
    if (!task.colocated.empty()) {
      colocated_tasks.push_back(&task);
    }
  }
  if (colocated_tasks.empty()) {
    return false;  // Nothing to attribute; any degradation is noise or
                   // stragglers outside co-location (not modeled).
  }

  const double observed = observation.normalized_throughput;

  if (colocated_tasks.size() == 1) {
    // Unambiguous: the single co-located task is the only possible source
    // of the degradation (single-task jobs always take this path).
    const TaskPlacementObservation* task = colocated_tasks.front();
    return table_.Record(task->workload, task->colocated, observed);
  }

  // Multi-task attribution. Gather the recorded state of each candidate.
  using Candidate = ObserveScratch::Candidate;
  std::vector<Candidate>& candidates = scratch->candidates;
  candidates.clear();
  candidates.reserve(colocated_tasks.size());
  for (const TaskPlacementObservation* task : colocated_tasks) {
    candidates.push_back({task, table_.Lookup(task->workload, task->colocated)});
  }

  auto most_colocated = [](const Candidate* a, const Candidate* b) {
    return a->task->colocated.size() < b->task->colocated.size();
  };

  // Rule 1: no previous observations.
  const bool any_recorded =
      std::any_of(candidates.begin(), candidates.end(),
                  [](const Candidate& c) { return c.recorded.has_value(); });
  if (!any_recorded) {
    const Candidate* pick = &candidates.front();
    for (const Candidate& c : candidates) {
      if (most_colocated(pick, &c)) {
        pick = &c;
      }
    }
    return table_.Record(pick->task->workload, pick->task->colocated, observed);
  }

  // Rule 2: some recorded entry is lower than the observation — the
  // recorded value was too pessimistic; adjust the lowest one upward.
  const Candidate* lowest_recorded = nullptr;
  for (const Candidate& c : candidates) {
    if (c.recorded.has_value() &&
        (lowest_recorded == nullptr || *c.recorded < *lowest_recorded->recorded)) {
      lowest_recorded = &c;
    }
  }
  if (lowest_recorded != nullptr && *lowest_recorded->recorded < observed) {
    return table_.Record(lowest_recorded->task->workload, lowest_recorded->task->colocated,
                         observed);
  }

  // Rule 3: all recorded entries exceed the observation — a task whose
  // entry we have not seen yet must be the straggler; blame the unrecorded
  // task with the most co-located neighbors.
  const Candidate* pick = nullptr;
  for (const Candidate& c : candidates) {
    if (!c.recorded.has_value() && (pick == nullptr || most_colocated(pick, &c))) {
      pick = &c;
    }
  }
  if (pick != nullptr) {
    return table_.Record(pick->task->workload, pick->task->colocated, observed);
  }

  // Every entry is recorded and all are >= observed: under noise-free
  // observations this cannot happen (recorded values are lower bounds);
  // with noise, lower the minimum entry so the table stays a lower bound.
  return table_.Record(lowest_recorded->task->workload, lowest_recorded->task->colocated,
                       observed);
}

}  // namespace eva
