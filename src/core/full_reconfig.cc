#include "src/core/full_reconfig.h"

#include <algorithm>

#include "src/common/arena.h"
#include "src/common/format.h"
#include "src/common/logging.h"
#include "src/common/thread_pool.h"

namespace eva {
namespace {

// True if `task` fits in the remaining capacity of an instance of `type`.
bool Fits(const TaskInfo& task, const InstanceType& type, const ResourceVector& used) {
  return (used + task.DemandFor(type.family)).FitsWithin(type.capacity);
}

// Result of scanning a candidate range for the TNRP argmax.
struct ArgmaxResult {
  int candidate = -1;
  Money tnrp = 0.0;
};

// Pooled per-round packing scratch, leased per (thread, nesting level) via
// the codebase's one sanctioned thread-local scratch mechanism (see
// common/arena.h): the thread pool's helping Wait() may start another
// packing on this thread while an inner argmax fan-out is pending, so a
// plain thread_local buffer would be clobbered mid-pack.
struct PackScratch {
  std::vector<bool> assigned;
  std::vector<bool> in_tentative_set;
  std::vector<const TaskInfo*> members;
  std::vector<std::size_t> member_indices;
};

// Per-worker scratch for the downsizing fan-out (shrink_one runs on pool
// threads, so it cannot share the packing frame above).
struct ShrinkScratch {
  std::vector<const TaskInfo*> members;
};

// Caller-facing entry points' pool-building scratch.
struct PoolScratch {
  std::vector<const TaskInfo*> pool;
};

// Serial argmax over pool[begin, end): the unassigned, fitting task whose
// addition maximizes TNRP(members + {task}); earliest index wins exact ties
// (the `>` below), which is the determinism contract the parallel reduction
// preserves.
ArgmaxResult ScanCandidates(std::size_t begin, std::size_t end,
                            const std::vector<const TaskInfo*>& pool,
                            const std::vector<bool>& assigned,
                            const std::vector<bool>& in_tentative_set,
                            const std::vector<const TaskInfo*>& members,
                            const InstanceType& type, const ResourceVector& used,
                            const TnrpCalculator& calculator) {
  ArgmaxResult best;
  for (std::size_t i = begin; i < end; ++i) {
    if (assigned[i] || in_tentative_set[i] || !Fits(*pool[i], type, used)) {
      continue;
    }
    const Money tnrp = calculator.SetTnrpPlusOne(members, *pool[i], type.family);
    if (best.candidate < 0 || tnrp > best.tnrp) {
      best.candidate = static_cast<int>(i);
      best.tnrp = tnrp;
    }
  }
  return best;
}

}  // namespace

void PackByReservationPriceInto(const SchedulingContext& context,
                                const TnrpCalculator& calculator,
                                std::vector<const TaskInfo*>& pool,
                                const PackingOptions& options, ConfigAppender& out,
                                std::vector<TaskId>* unassigned) {
  // Deterministic candidate order: descending RP, then ascending id. The
  // argmax below breaks ties by this order, matching the VSBPP heuristic's
  // "largest ball first" intuition.
  SortTasksByRpDesc(calculator, pool);

  const bool parallel = options.pool != nullptr && options.pool->num_threads() > 1;
  // Per-round scratch, pooled per (thread, nesting level): the packing runs
  // (at least) twice per changed round, and these grow-to-pool-size buffers
  // dominated its allocation profile.
  ScratchLease<PackScratch> scratch;
  std::vector<bool>& assigned = scratch->assigned;
  std::vector<bool>& in_tentative_set = scratch->in_tentative_set;
  std::vector<const TaskInfo*>& members = scratch->members;
  std::vector<std::size_t>& member_indices = scratch->member_indices;
  assigned.assign(pool.size(), false);
  std::size_t num_assigned = 0;
  const std::size_t pack_begin = out.used();

  for (int type_index : context.catalog->IndicesByDescendingCost()) {
    const InstanceType& type = context.catalog->Get(type_index);
    if (num_assigned == pool.size()) {
      break;
    }
    // Marks pool members tentatively placed on the instance being filled,
    // so the argmax never re-selects a task already in T.
    in_tentative_set.assign(pool.size(), false);
    while (true) {
      // Open a tentative instance of this type and fill it greedily.
      members.clear();
      member_indices.clear();
      ResourceVector used;
      Money best_set_tnrp = 0.0;
      std::fill(in_tentative_set.begin(), in_tentative_set.end(), false);

      while (true) {
        // Pick the unassigned, fitting task that maximizes TNRP(T + {tau}).
        ArgmaxResult best;
        if (parallel && pool.size() - num_assigned >= options.parallel_min_candidates) {
          // Chunked fan-out; combining in chunk order with strict `>` picks
          // the earliest-index maximum, exactly like the serial scan.
          const std::size_t chunks =
              static_cast<std::size_t>(options.pool->num_threads()) + 1;
          const std::size_t chunk_size = (pool.size() + chunks - 1) / chunks;
          std::vector<ArgmaxResult> partial(chunks);
          ThreadPool::TaskGroup group(*options.pool);
          for (std::size_t c = 0; c < chunks; ++c) {
            const std::size_t begin = c * chunk_size;
            const std::size_t end = std::min(pool.size(), begin + chunk_size);
            if (begin >= end) {
              break;
            }
            group.Submit([&, c, begin, end] {
              partial[c] = ScanCandidates(begin, end, pool, assigned, in_tentative_set,
                                          members, type, used, calculator);
            });
          }
          group.Wait();
          for (const ArgmaxResult& chunk : partial) {
            if (chunk.candidate < 0) {
              continue;
            }
            if (best.candidate < 0 || chunk.tnrp > best.tnrp) {
              best = chunk;
            }
          }
        } else {
          best = ScanCandidates(0, pool.size(), pool, assigned, in_tentative_set, members,
                                type, used, calculator);
        }
        const int best_candidate = best.candidate;
        const Money best_candidate_tnrp = best.tnrp;
        if (best_candidate < 0) {
          break;  // Nothing fits anymore.
        }
        if (!members.empty() && best_candidate_tnrp < best_set_tnrp) {
          break;  // Line 9-11: adding would reduce the set's TNRP.
        }
        members.push_back(pool[static_cast<std::size_t>(best_candidate)]);
        member_indices.push_back(static_cast<std::size_t>(best_candidate));
        in_tentative_set[static_cast<std::size_t>(best_candidate)] = true;
        used += pool[static_cast<std::size_t>(best_candidate)]->DemandFor(type.family);
        best_set_tnrp = best_candidate_tnrp;
      }

      // Line 14: keep the instance only if the assignment is cost-efficient.
      const bool cost_efficient =
          !members.empty() &&
          best_set_tnrp + options.cost_epsilon * type.cost_per_hour >= type.cost_per_hour;
      if (!cost_efficient) {
        break;  // Move on to the next cheaper instance type.
      }
      ConfigInstance& instance = out.Append();
      instance.type_index = type_index;
      for (const TaskInfo* member : members) {
        instance.tasks.push_back(member->id);
      }
      for (std::size_t index : member_indices) {
        assigned[index] = true;
      }
      num_assigned += member_indices.size();
    }
  }

  // Downsizing step of the VSBPP heuristic: a set that was filled on a large
  // type but fits a cheaper one moves there (e.g. two 2-GPU tasks packed
  // while iterating the 8-GPU type fit the 4-GPU type at half the price).
  if (options.shrink_to_cheapest_type) {
    // Each instance's best type is independent of the others — the natural
    // "independent instance-type candidates" fan-out. Writes are disjoint
    // and the per-instance scan is deterministic, so serial and parallel
    // results are identical.
    const std::size_t num_packed = out.used() - pack_begin;
    const auto shrink_one = [&](std::size_t index) {
      ConfigInstance& instance = out[pack_begin + index];
      ScratchLease<ShrinkScratch> shrink;
      std::vector<const TaskInfo*>& members = shrink->members;
      members.clear();
      for (TaskId id : instance.tasks) {
        if (const TaskInfo* task = context.FindTask(id)) {
          members.push_back(task);
        }
      }
      // Pick the fitting type with the largest net value (TNRP - cost).
      // With homogeneous speedups this is simply the cheapest fitting type;
      // with §4.2's heterogeneous families it also weighs where the set
      // runs fastest per dollar.
      int best_type = instance.type_index;
      Money best_net =
          calculator.SetTnrp(members, context.catalog->Get(best_type).family) -
          context.catalog->Get(best_type).cost_per_hour;
      for (int k = 0; k < context.catalog->NumTypes(); ++k) {
        const InstanceType& type = context.catalog->Get(k);
        ResourceVector total;
        for (const TaskInfo* member : members) {
          total += member->DemandFor(type.family);
        }
        if (!total.FitsWithin(type.capacity)) {
          continue;
        }
        const Money net = calculator.SetTnrp(members, type.family) - type.cost_per_hour;
        if (net > best_net + 1e-12) {
          best_net = net;
          best_type = k;
        }
      }
      instance.type_index = best_type;
    };
    if (parallel && num_packed >= 8) {
      options.pool->ParallelFor(num_packed, shrink_one);
    } else {
      for (std::size_t i = 0; i < num_packed; ++i) {
        shrink_one(i);
      }
    }
  }

  // Safety net: the greedy pass can strand a task when a tentative set at
  // its reservation-price type failed the cost test as a group. Hosting the
  // task alone on its RP instance is cost-efficient by definition
  // (TNRP = RP = C_k with no co-location), so fall back to that.
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (assigned[i]) {
      continue;
    }
    if (!options.assign_leftovers_standalone) {
      if (unassigned != nullptr) {
        unassigned->push_back(pool[i]->id);
      }
      continue;
    }
    const std::optional<int> type_index = context.catalog->CheapestFitting(
        [task = pool[i]](InstanceFamily family) { return task->DemandFor(family); });
    if (!type_index.has_value()) {
      EVA_LOG_WARNING("task " EVA_PRId64 " fits no instance type; leaving unassigned",
                      pool[i]->id);
      if (unassigned != nullptr) {
        unassigned->push_back(pool[i]->id);
      }
      continue;
    }
    ConfigInstance& instance = out.Append();
    instance.type_index = *type_index;
    instance.tasks.push_back(pool[i]->id);
  }
}

PackingResult PackByReservationPrice(const SchedulingContext& context,
                                     const TnrpCalculator& calculator,
                                     std::vector<const TaskInfo*> pool,
                                     const PackingOptions& options) {
  PackingResult result;
  ConfigAppender out(result.instances);
  PackByReservationPriceInto(context, calculator, pool, options, out,
                             &result.unassigned);
  out.Finish();
  return result;
}

void FullReconfigurationInto(const SchedulingContext& context,
                             const TnrpCalculator& calculator,
                             const PackingOptions& options, ClusterConfig& out) {
  ScratchLease<PoolScratch> scratch;
  std::vector<const TaskInfo*>& pool = scratch->pool;
  pool.clear();
  pool.reserve(context.tasks.size());
  for (const TaskInfo& task : context.tasks) {
    pool.push_back(&task);
  }
  ConfigAppender appender(out.instances);
  PackByReservationPriceInto(context, calculator, pool, options, appender,
                             /*unassigned=*/nullptr);
  appender.Finish();
}

ClusterConfig FullReconfiguration(const SchedulingContext& context,
                                  const TnrpCalculator& calculator,
                                  const PackingOptions& options) {
  ClusterConfig config;
  FullReconfigurationInto(context, calculator, options, config);
  return config;
}

}  // namespace eva
