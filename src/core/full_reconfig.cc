#include "src/core/full_reconfig.h"

#include <algorithm>

#include "src/common/logging.h"

namespace eva {
namespace {

// True if `task` fits in the remaining capacity of an instance of `type`.
bool Fits(const TaskInfo& task, const InstanceType& type, const ResourceVector& used) {
  return (used + task.DemandFor(type.family)).FitsWithin(type.capacity);
}

}  // namespace

PackingResult PackByReservationPrice(const SchedulingContext& context,
                                     const TnrpCalculator& calculator,
                                     std::vector<const TaskInfo*> pool,
                                     const PackingOptions& options) {
  PackingResult result;

  // Deterministic candidate order: descending RP, then ascending id. The
  // argmax below breaks ties by this order, matching the VSBPP heuristic's
  // "largest ball first" intuition.
  std::sort(pool.begin(), pool.end(), [&calculator](const TaskInfo* a, const TaskInfo* b) {
    const Money rp_a = calculator.ReservationPrice(*a);
    const Money rp_b = calculator.ReservationPrice(*b);
    if (rp_a != rp_b) {
      return rp_a > rp_b;
    }
    return a->id < b->id;
  });

  std::vector<bool> assigned(pool.size(), false);
  std::size_t num_assigned = 0;

  for (int type_index : context.catalog->IndicesByDescendingCost()) {
    const InstanceType& type = context.catalog->Get(type_index);
    if (num_assigned == pool.size()) {
      break;
    }
    // Marks pool members tentatively placed on the instance being filled,
    // so the argmax never re-selects a task already in T.
    std::vector<bool> in_tentative_set(pool.size(), false);
    while (true) {
      // Open a tentative instance of this type and fill it greedily.
      std::vector<const TaskInfo*> members;
      std::vector<std::size_t> member_indices;
      ResourceVector used;
      Money best_set_tnrp = 0.0;
      std::fill(in_tentative_set.begin(), in_tentative_set.end(), false);

      while (true) {
        // Pick the unassigned, fitting task that maximizes TNRP(T + {tau}).
        int best_candidate = -1;
        Money best_candidate_tnrp = 0.0;
        for (std::size_t i = 0; i < pool.size(); ++i) {
          if (assigned[i] || in_tentative_set[i] || !Fits(*pool[i], type, used)) {
            continue;
          }
          std::vector<const TaskInfo*> tentative = members;
          tentative.push_back(pool[i]);
          const Money tnrp = calculator.SetTnrp(tentative, type.family);
          if (best_candidate < 0 || tnrp > best_candidate_tnrp) {
            best_candidate = static_cast<int>(i);
            best_candidate_tnrp = tnrp;
          }
        }
        if (best_candidate < 0) {
          break;  // Nothing fits anymore.
        }
        if (!members.empty() && best_candidate_tnrp < best_set_tnrp) {
          break;  // Line 9-11: adding would reduce the set's TNRP.
        }
        members.push_back(pool[static_cast<std::size_t>(best_candidate)]);
        member_indices.push_back(static_cast<std::size_t>(best_candidate));
        in_tentative_set[static_cast<std::size_t>(best_candidate)] = true;
        used += pool[static_cast<std::size_t>(best_candidate)]->DemandFor(type.family);
        best_set_tnrp = best_candidate_tnrp;
      }

      // Line 14: keep the instance only if the assignment is cost-efficient.
      const bool cost_efficient =
          !members.empty() &&
          best_set_tnrp + options.cost_epsilon * type.cost_per_hour >= type.cost_per_hour;
      if (!cost_efficient) {
        break;  // Move on to the next cheaper instance type.
      }
      ConfigInstance instance;
      instance.type_index = type_index;
      for (const TaskInfo* member : members) {
        instance.tasks.push_back(member->id);
      }
      result.instances.push_back(std::move(instance));
      for (std::size_t index : member_indices) {
        assigned[index] = true;
      }
      num_assigned += member_indices.size();
    }
  }

  // Downsizing step of the VSBPP heuristic: a set that was filled on a large
  // type but fits a cheaper one moves there (e.g. two 2-GPU tasks packed
  // while iterating the 8-GPU type fit the 4-GPU type at half the price).
  if (options.shrink_to_cheapest_type) {
    std::vector<const TaskInfo*> members;
    for (ConfigInstance& instance : result.instances) {
      members.clear();
      for (TaskId id : instance.tasks) {
        if (const TaskInfo* task = context.FindTask(id)) {
          members.push_back(task);
        }
      }
      // Pick the fitting type with the largest net value (TNRP - cost).
      // With homogeneous speedups this is simply the cheapest fitting type;
      // with §4.2's heterogeneous families it also weighs where the set
      // runs fastest per dollar.
      int best_type = instance.type_index;
      Money best_net =
          calculator.SetTnrp(members, context.catalog->Get(best_type).family) -
          context.catalog->Get(best_type).cost_per_hour;
      for (int k = 0; k < context.catalog->NumTypes(); ++k) {
        const InstanceType& type = context.catalog->Get(k);
        ResourceVector total;
        for (const TaskInfo* member : members) {
          total += member->DemandFor(type.family);
        }
        if (!total.FitsWithin(type.capacity)) {
          continue;
        }
        const Money net = calculator.SetTnrp(members, type.family) - type.cost_per_hour;
        if (net > best_net + 1e-12) {
          best_net = net;
          best_type = k;
        }
      }
      instance.type_index = best_type;
    }
  }

  // Safety net: the greedy pass can strand a task when a tentative set at
  // its reservation-price type failed the cost test as a group. Hosting the
  // task alone on its RP instance is cost-efficient by definition
  // (TNRP = RP = C_k with no co-location), so fall back to that.
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (assigned[i]) {
      continue;
    }
    if (!options.assign_leftovers_standalone) {
      result.unassigned.push_back(pool[i]->id);
      continue;
    }
    const std::optional<int> type_index = context.catalog->CheapestFitting(
        [task = pool[i]](InstanceFamily family) { return task->DemandFor(family); });
    if (!type_index.has_value()) {
      EVA_LOG_WARNING("task %lld fits no instance type; leaving unassigned",
                      static_cast<long long>(pool[i]->id));
      result.unassigned.push_back(pool[i]->id);
      continue;
    }
    ConfigInstance instance;
    instance.type_index = *type_index;
    instance.tasks.push_back(pool[i]->id);
    result.instances.push_back(std::move(instance));
  }
  return result;
}

ClusterConfig FullReconfiguration(const SchedulingContext& context,
                                  const TnrpCalculator& calculator,
                                  const PackingOptions& options) {
  std::vector<const TaskInfo*> pool;
  pool.reserve(context.tasks.size());
  for (const TaskInfo& task : context.tasks) {
    pool.push_back(&task);
  }
  ClusterConfig config;
  config.instances = PackByReservationPrice(context, calculator, std::move(pool), options)
                         .instances;
  return config;
}

}  // namespace eva
