// Struct-of-arrays building blocks for the hot per-round and per-event
// state: dense columns keyed by the engine's sequential integer ids.
//
//   * EpochColumn<T> — a dense id-indexed column whose entries are stamped
//     with the epoch that wrote them; Clear() bumps the epoch, invalidating
//     every entry in O(1). This is the generalization of the scheduling
//     context's epoch-stamped flat indices: anywhere the engine used to
//     rebuild a per-round unordered_map it can keep one column for the whole
//     run and Clear() it per round — zero allocations at steady state.
//   * EpochSet<Id> — EpochColumn<char> membership plus an insertion-order
//     list, replacing per-event std::set node churn (the execution model's
//     dirty set). O(1) insert/contains/Clear; the list can be sorted when a
//     consumer needs id-ascending iteration.
//   * IdSet<Id> — a sorted flat vector with set semantics. Iteration order
//     is identical to std::set<Id>, but erase/insert reuse one contiguous
//     buffer instead of allocating/freeing a node per mutation. Meant for
//     small-cardinality per-record sets (an instance's assigned/present
//     tasks) where the O(n) shift is cheaper than a malloc.
//   * PagedTable<T> — id-indexed record storage in fixed-size pages: stable
//     pointers (pages never move), id-ordered iteration, O(1) lookup, and
//     one allocation per page instead of one per record (the task table).
//
// None of these change values or iteration contracts relative to the
// containers they replace — they are layout changes, chosen so the engine's
// floating-point fold orders (and therefore the golden metrics) stay
// bit-identical.

#ifndef SRC_COMMON_SOA_TABLE_H_
#define SRC_COMMON_SOA_TABLE_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iterator>
#include <utility>
#include <memory>
#include <vector>

namespace eva {

// Dense column of T keyed by a non-negative integer id. An entry is live
// iff its stamp matches the current epoch; Clear() bumps the epoch. On
// epoch wrap (2^32), every stamp is zeroed so stale entries from the
// previous wrap cannot alias as live.
template <typename T>
class EpochColumn {
 public:
  // Writes `value` at `id`, growing the column if needed.
  void Set(std::size_t id, const T& value) {
    EnsureSize(id);
    values_[id] = value;
    stamps_[id] = epoch_;
  }

  // Mutable access to the slot at `id`, stamping it live (value is
  // default-constructed garbage if the slot was not live this epoch —
  // callers that need read-modify-write should Find() first).
  T& Touch(std::size_t id) {
    EnsureSize(id);
    stamps_[id] = epoch_;
    return values_[id];
  }

  const T* Find(std::size_t id) const {
    if (id >= stamps_.size() || stamps_[id] != epoch_) {
      return nullptr;
    }
    return &values_[id];
  }
  T* Find(std::size_t id) {
    if (id >= stamps_.size() || stamps_[id] != epoch_) {
      return nullptr;
    }
    return &values_[id];
  }
  bool Contains(std::size_t id) const {
    return id < stamps_.size() && stamps_[id] == epoch_;
  }

  // O(1) invalidation of every entry (epoch bump; see wrap note above).
  void Clear() {
    if (++epoch_ == 0) {
      std::fill(stamps_.begin(), stamps_.end(), 0u);
      epoch_ = 1;
    }
  }

  std::size_t capacity() const { return values_.size(); }

 private:
  void EnsureSize(std::size_t id) {
    if (id >= values_.size()) {
      // Doubling growth: ids arrive sequentially, and resize(id + 1) per id
      // would reallocate every call.
      const std::size_t grown = std::max(id + 1, values_.size() * 2);
      values_.resize(grown);
      stamps_.resize(grown, epoch_ - 1);
    }
  }

  std::vector<T> values_;
  std::vector<std::uint32_t> stamps_;
  std::uint32_t epoch_ = 1;
};

// Set of integer ids with O(1) insert/contains/Clear and an explicit
// element list. Iteration order is insertion order; call SortedView() (or
// sort `items()` yourself) when a consumer requires ascending ids.
template <typename Id>
class EpochSet {
 public:
  // Returns true if the id was newly inserted (or re-inserted after an
  // EraseMembership this epoch — the element list already has it then).
  bool Insert(Id id) {
    if (const char* member = member_.Find(static_cast<std::size_t>(id))) {
      if (*member != 0) {
        return false;
      }
      member_.Touch(static_cast<std::size_t>(id)) = 1;
      return true;
    }
    member_.Touch(static_cast<std::size_t>(id)) = 1;
    items_.push_back(id);
    return true;
  }

  bool Contains(Id id) const {
    const char* member = member_.Find(static_cast<std::size_t>(id));
    return member != nullptr && *member != 0;
  }

  // Removes the id from membership; the element list keeps the stale entry
  // until Clear() (consumers filter through Contains). The execution model
  // never needs mid-epoch erase, so this stays O(1).
  void EraseMembership(Id id) {
    if (member_.Contains(static_cast<std::size_t>(id))) {
      member_.Touch(static_cast<std::size_t>(id)) = 0;
    }
  }

  bool Empty() const { return items_.empty(); }
  std::size_t SizeUpperBound() const { return items_.size(); }

  // The insertion-order element list; may contain erased ids (check
  // Contains) but never duplicates.
  const std::vector<Id>& items() const { return items_; }
  std::vector<Id>& mutable_items() { return items_; }

  void Clear() {
    member_.Clear();
    items_.clear();
  }

 private:
  // 1 = member, 0 = erased-this-epoch; absent stamp = never inserted.
  EpochColumn<char> member_;
  std::vector<Id> items_;
};

// Sorted flat vector with std::set semantics and iteration order. insert()
// and erase() shift the tail (fine at per-record cardinalities); capacity
// is retained across mutations, so steady-state churn allocates nothing.
template <typename Id>
class IdSet {
 public:
  using const_iterator = typename std::vector<Id>::const_iterator;

  bool insert(Id id) {
    auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
    if (it != ids_.end() && *it == id) {
      return false;
    }
    ids_.insert(it, id);
    return true;
  }

  bool erase(Id id) {
    auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
    if (it == ids_.end() || *it != id) {
      return false;
    }
    ids_.erase(it);
    return true;
  }

  bool contains(Id id) const {
    return std::binary_search(ids_.begin(), ids_.end(), id);
  }
  std::size_t count(Id id) const { return contains(id) ? 1 : 0; }

  // Replaces the contents with an already-sorted, duplicate-free sequence,
  // reusing capacity (the bulk-rebuild path of per-round consumers).
  void AssignSorted(const std::vector<Id>& sorted_unique) {
    ids_.assign(sorted_unique.begin(), sorted_unique.end());
  }

  std::size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  void clear() { ids_.clear(); }

  const_iterator begin() const { return ids_.begin(); }
  const_iterator end() const { return ids_.end(); }
  const std::vector<Id>& ids() const { return ids_; }

 private:
  std::vector<Id> ids_;
};

// Open-addressing hash map for memo tables: flat slot storage (no per-node
// allocation — the node-based unordered_map shards it replaces allocated on
// every insert), linear probing over a power-of-two capacity, no erase
// (memo entries die by Clear(), which keeps capacity). Lookups may probe
// with a cheaper key type than the stored one (an interned key whose
// payload lives in caller-owned storage): `Find`/`Upsert` take any probe
// the Eq functor can compare against a stored key, plus the precomputed
// hash. `Hash` re-hashes *stored* keys on growth, so interned keys should
// embed their hash. Not internally synchronized — callers shard + lock.
template <typename K, typename V, typename Hash, typename Eq = std::equal_to<K>>
class FlatMemoMap {
 public:
  explicit FlatMemoMap(Hash hash = Hash(), Eq eq = Eq())
      : hash_(hash), eq_(eq) {}

  template <typename Probe>
  V* Find(const Probe& probe, std::size_t hash) {
    if (used_ == 0) {
      return nullptr;
    }
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = MixHash(hash) & mask;; i = (i + 1) & mask) {
      Slot& slot = slots_[i];
      if (!slot.used) {
        return nullptr;
      }
      if (eq_(slot.key, probe)) {
        return &slot.value;
      }
    }
  }

  // Returns the value slot for `probe`, default-constructing a stored key
  // via `make_key()` on first insertion (the only time the caller must
  // materialize/intern the full key — hits and overwrites allocate
  // nothing).
  template <typename Probe, typename MakeKey>
  V& Upsert(const Probe& probe, std::size_t hash, MakeKey&& make_key) {
    if (slots_.empty() || (used_ + 1) * 4 > slots_.size() * 3) {
      Grow();
    }
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = MixHash(hash) & mask;; i = (i + 1) & mask) {
      Slot& slot = slots_[i];
      if (!slot.used) {
        slot.key = make_key();
        slot.used = true;
        ++used_;
        return slot.value;
      }
      if (eq_(slot.key, probe)) {
        return slot.value;
      }
    }
  }

  std::size_t size() const { return used_; }

  // Drops every entry, keeping slot capacity (steady-state Clear + refill
  // allocates nothing).
  void Clear() {
    for (Slot& slot : slots_) {
      slot.used = false;
      slot.key = K();
      slot.value = V();
    }
    used_ = 0;
  }

 private:
  struct Slot {
    K key{};
    V value{};
    bool used = false;
  };

  // Power-of-two masking exposes weak low bits that prime-modulo bucketing
  // (the unordered_map this replaces) papered over; with linear probing the
  // resulting clustering turns probe chains pathological. Finalize every
  // caller hash with a full-avalanche mixer (murmur3 fmix64) before
  // masking.
  static std::size_t MixHash(std::size_t hash) {
    std::uint64_t h = hash;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(h);
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.empty() ? 64 : old.size() * 2, Slot());
    const std::size_t mask = slots_.size() - 1;
    for (Slot& slot : old) {
      if (!slot.used) {
        continue;
      }
      std::size_t i = MixHash(hash_(slot.key)) & mask;
      while (slots_[i].used) {
        i = (i + 1) & mask;
      }
      slots_[i] = std::move(slot);
    }
  }

  Hash hash_;
  Eq eq_;
  std::vector<Slot> slots_;
  std::size_t used_ = 0;
};

// Record table keyed by a dense sequential id: fixed-size pages give stable
// record addresses (no rehash/move on growth), one allocation per
// kPageSize records, and id-ascending iteration that skips erased slots.
template <typename T, typename Id = std::int64_t>
class PagedTable {
 public:
  static constexpr std::size_t kPageSize = 512;

  // Default-constructs (or reuses the erased slot of) the record at `id`.
  T& Emplace(Id id) {
    const std::size_t index = static_cast<std::size_t>(id);
    const std::size_t page = index / kPageSize;
    if (page >= pages_.size()) {
      pages_.resize(page + 1);
    }
    if (!pages_[page]) {
      pages_[page] = std::make_unique<Page>();
    }
    Page& p = *pages_[page];
    const std::size_t slot = index % kPageSize;
    assert(!p.live[slot]);
    p.live[slot] = true;
    ++p.live_count;
    ++size_;
    p.records[slot] = T{};
    return p.records[slot];
  }

  T* Find(Id id) {
    const std::size_t index = static_cast<std::size_t>(id);
    const std::size_t page = index / kPageSize;
    if (id < 0 || page >= pages_.size() || !pages_[page] ||
        !pages_[page]->live[index % kPageSize]) {
      return nullptr;
    }
    return &pages_[page]->records[index % kPageSize];
  }
  const T* Find(Id id) const {
    return const_cast<PagedTable*>(this)->Find(id);
  }

  const T& at(Id id) const {
    const T* record = Find(id);
    assert(record != nullptr);
    return *record;
  }

  void Erase(Id id) {
    const std::size_t index = static_cast<std::size_t>(id);
    Page& p = *pages_[index / kPageSize];
    assert(p.live[index % kPageSize]);
    p.live[index % kPageSize] = false;
    --p.live_count;
    --size_;
    // Ids are handed out sequentially, so once a page fully drains no id in
    // it can come back — free it, keeping resident memory O(live records).
    if (p.live_count == 0) {
      pages_[index / kPageSize].reset();
    }
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Forward iterator over live records in ascending id order.
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = const T*;
    using reference = const T&;

    const_iterator(const PagedTable* table, std::size_t index)
        : table_(table), index_(index) {
      SkipDead();
    }
    const T& operator*() const {
      return table_->pages_[index_ / kPageSize]->records[index_ % kPageSize];
    }
    const T* operator->() const { return &**this; }
    Id id() const { return static_cast<Id>(index_); }
    const_iterator& operator++() {
      ++index_;
      SkipDead();
      return *this;
    }
    bool operator==(const const_iterator& other) const {
      return index_ == other.index_;
    }
    bool operator!=(const const_iterator& other) const {
      return !(*this == other);
    }

   private:
    void SkipDead() {
      const std::size_t limit = table_->pages_.size() * kPageSize;
      while (index_ < limit) {
        const Page* page = table_->pages_[index_ / kPageSize].get();
        if (page == nullptr || page->live_count == 0) {
          index_ = (index_ / kPageSize + 1) * kPageSize;
          continue;
        }
        if (page->live[index_ % kPageSize]) {
          return;
        }
        ++index_;
      }
      index_ = limit;
    }

    const PagedTable* table_;
    std::size_t index_;
  };

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const {
    return const_iterator(this, pages_.size() * kPageSize);
  }

 private:
  struct Page {
    T records[kPageSize];
    bool live[kPageSize] = {};
    std::size_t live_count = 0;
  };

  std::vector<std::unique_ptr<Page>> pages_;
  std::size_t size_ = 0;
};

}  // namespace eva

#endif  // SRC_COMMON_SOA_TABLE_H_
