// Lightweight leveled logging with printf-style formatting.
//
// The simulator and scheduler log scheduling decisions at kDebug; the
// experiment harnesses run with kWarning by default so bench output stays
// parseable.

#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <atomic>
#include <cstdarg>
#include <cstdlib>
#include <string>

namespace eva {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kNone = 4,
};

namespace internal {
// Exposed so the log macros can skip suppressed messages with one inline
// relaxed load — the hot event loop logs at kDebug per event, and a varargs
// call per suppressed message showed up in profiles.
extern std::atomic<int> g_log_level;
}  // namespace internal

// Process-wide log threshold. Messages below the threshold are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Redirects the log sink to `path` (append mode); nullptr or an unopenable
// path restores stderr. Returns false when the file could not be opened.
bool SetLogFile(const char* path);

// Applies EVA_LOG_LEVEL (a level name like "debug"/"warning" or the
// numeric enum value) and EVA_LOG_FILE (a path for the sink) from the
// environment. Runs once automatically before main() via a static
// initializer; exposed so tests can re-apply a modified environment.
void InitLoggingFromEnv();

inline bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >=
         internal::g_log_level.load(std::memory_order_relaxed);
}

// Core sink; adds "[LEVEL] " prefix and a newline, writes to stderr.
void LogMessage(LogLevel level, const char* format, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

}  // namespace eva

#define EVA_LOG_AT(level, ...)                 \
  do {                                         \
    if (::eva::LogEnabled(level)) {            \
      ::eva::LogMessage(level, __VA_ARGS__);   \
    }                                          \
  } while (0)
#define EVA_LOG_DEBUG(...) EVA_LOG_AT(::eva::LogLevel::kDebug, __VA_ARGS__)
#define EVA_LOG_INFO(...) EVA_LOG_AT(::eva::LogLevel::kInfo, __VA_ARGS__)
#define EVA_LOG_WARNING(...) EVA_LOG_AT(::eva::LogLevel::kWarning, __VA_ARGS__)
#define EVA_LOG_ERROR(...) EVA_LOG_AT(::eva::LogLevel::kError, __VA_ARGS__)

// Always-on invariant check (independent of NDEBUG, so contract violations
// abort identically in release benches and death tests). Reserved for cheap
// checks on cold paths — API-contract violations like aliased in/out
// arguments — never for per-event hot-loop validation.
#define EVA_CHECK(condition, ...)                             \
  do {                                                        \
    if (!(condition)) {                                       \
      ::eva::LogMessage(::eva::LogLevel::kError,              \
                        "EVA_CHECK failed: %s — " __VA_ARGS__ \
                        " (%s:%d)",                           \
                        #condition, __FILE__, __LINE__);      \
      ::std::abort();                                         \
    }                                                         \
  } while (0)

#endif  // SRC_COMMON_LOGGING_H_
