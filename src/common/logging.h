// Lightweight leveled logging with printf-style formatting.
//
// The simulator and scheduler log scheduling decisions at kDebug; the
// experiment harnesses run with kWarning by default so bench output stays
// parseable.

#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <cstdarg>
#include <string>

namespace eva {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kNone = 4,
};

// Process-wide log threshold. Messages below the threshold are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Core sink; adds "[LEVEL] " prefix and a newline, writes to stderr.
void LogMessage(LogLevel level, const char* format, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

}  // namespace eva

#define EVA_LOG_DEBUG(...) ::eva::LogMessage(::eva::LogLevel::kDebug, __VA_ARGS__)
#define EVA_LOG_INFO(...) ::eva::LogMessage(::eva::LogLevel::kInfo, __VA_ARGS__)
#define EVA_LOG_WARNING(...) ::eva::LogMessage(::eva::LogLevel::kWarning, __VA_ARGS__)
#define EVA_LOG_ERROR(...) ::eva::LogMessage(::eva::LogLevel::kError, __VA_ARGS__)

#endif  // SRC_COMMON_LOGGING_H_
