// A small fixed-size thread pool for running independent experiment
// simulations in parallel.
//
// Deliberately minimal: Submit() enqueues a task, Wait() blocks until every
// submitted task has finished. Tasks must not throw (the pool terminates on
// escaped exceptions, like std::thread does) and must synchronize any shared
// state themselves; the intended usage is embarrassingly-parallel work that
// writes to disjoint result slots.

#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace eva {

class ThreadPool {
 public:
  // num_threads <= 0 selects DefaultThreads().
  explicit ThreadPool(int num_threads = 0);

  // Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has run to completion.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Hardware concurrency, at least 1.
  static int DefaultThreads();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  int in_flight_ = 0;  // Queued + currently executing tasks.
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace eva

#endif  // SRC_COMMON_THREAD_POOL_H_
