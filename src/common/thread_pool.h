// A small fixed-size thread pool for running independent experiment
// simulations in parallel.
//
// Deliberately minimal: Submit() enqueues a task, Wait() blocks until every
// submitted task has finished. Tasks must not throw (the pool terminates on
// escaped exceptions, like std::thread does) and must synchronize any shared
// state themselves; the intended usage is embarrassingly-parallel work that
// writes to disjoint result slots.
//
// TaskGroup tracks one batch of tasks rather than the whole pool, and its
// Wait() *helps*: while the group is unfinished the waiting thread pops and
// runs queued pool tasks instead of blocking. That makes nested fan-out safe
// (a pool task may open its own group and wait on it without deadlocking,
// even on a single-threaded pool) — the pattern the scheduler decision path
// uses to evaluate Full and Partial Reconfiguration concurrently while each
// parallelizes its inner loops on the same pool.

#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace eva {

class ThreadPool {
 public:
  // num_threads <= 0 selects DefaultThreads().
  explicit ThreadPool(int num_threads = 0);

  // Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has run to completion.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Hardware concurrency, at least 1.
  static int DefaultThreads();

  // One batch of tasks. Submit from any thread; Wait until exactly this
  // batch is done. Destroying an unwaited group waits first.
  class TaskGroup {
   public:
    explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
    ~TaskGroup() { Wait(); }

    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    void Submit(std::function<void()> task);

    // Runs queued pool tasks (any group's) while this group is unfinished,
    // then returns. Safe to call from inside a pool task.
    void Wait();

   private:
    friend class ThreadPool;

    ThreadPool& pool_;
    int pending_ = 0;  // Guarded by pool_.mutex_.
  };

  // Runs fn(i) for i in [0, n) across the pool, helping from the calling
  // thread, and blocks until all iterations finish. Iterations are chunked
  // contiguously; fn must tolerate concurrent invocation on distinct i.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();
  // Pops and runs one queued task if any; returns false when queue empty.
  bool RunOneQueued(std::unique_lock<std::mutex>& lock);

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  int in_flight_ = 0;  // Queued + currently executing tasks.
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace eva

#endif  // SRC_COMMON_THREAD_POOL_H_
