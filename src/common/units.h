// Time and money conventions shared across the codebase.
//
// Simulation time is seconds since experiment start, stored as double; money
// is US dollars stored as double. Both choices mirror the quantities the
// paper reports (hourly instance prices, delays measured in seconds).

#ifndef SRC_COMMON_UNITS_H_
#define SRC_COMMON_UNITS_H_

#include <cstdint>

namespace eva {

// Simulation timestamps and durations, in seconds.
using SimTime = double;

// US dollars.
using Money = double;

inline constexpr double kSecondsPerMinute = 60.0;
inline constexpr double kSecondsPerHour = 3600.0;
inline constexpr double kSecondsPerDay = 86400.0;

// Converts an hourly price and an uptime in seconds into a dollar amount.
inline Money CostForUptime(Money cost_per_hour, SimTime uptime_seconds) {
  return cost_per_hour * (uptime_seconds / kSecondsPerHour);
}

inline SimTime HoursToSeconds(double hours) { return hours * kSecondsPerHour; }
inline double SecondsToHours(SimTime seconds) { return seconds / kSecondsPerHour; }
inline SimTime MinutesToSeconds(double minutes) { return minutes * kSecondsPerMinute; }

// Strongly-typed identifiers. Plain integers are easy to mix up across the
// scheduler/simulator boundary; distinct aliases at least document intent.
using JobId = std::int64_t;
using TaskId = std::int64_t;
using InstanceId = std::int64_t;

inline constexpr JobId kInvalidJobId = -1;
inline constexpr TaskId kInvalidTaskId = -1;
inline constexpr InstanceId kInvalidInstanceId = -1;

}  // namespace eva

#endif  // SRC_COMMON_UNITS_H_
