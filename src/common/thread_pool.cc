#include "src/common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace eva {

int ThreadPool::DefaultThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(int num_threads) {
  const int n = num_threads > 0 ? num_threads : DefaultThreads();
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and drained.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace eva
