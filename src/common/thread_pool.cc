#include "src/common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace eva {

int ThreadPool::DefaultThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(int num_threads) {
  const int n = num_threads > 0 ? num_threads : DefaultThreads();
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

bool ThreadPool::RunOneQueued(std::unique_lock<std::mutex>& lock) {
  if (queue_.empty()) {
    return false;
  }
  std::function<void()> task = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  task();
  lock.lock();
  if (--in_flight_ == 0) {
    all_done_.notify_all();
  }
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and drained.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

void ThreadPool::TaskGroup::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(pool_.mutex_);
    ++pending_;
  }
  pool_.Submit([this, task = std::move(task)] {
    task();
    std::lock_guard<std::mutex> lock(pool_.mutex_);
    if (--pending_ == 0) {
      pool_.all_done_.notify_all();
    }
  });
}

void ThreadPool::TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(pool_.mutex_);
  while (pending_ > 0) {
    // Help: drain queued tasks (ours or anyone's) instead of blocking a
    // thread the group's own tasks may need.
    if (pool_.RunOneQueued(lock)) {
      continue;
    }
    // Nothing runnable: our remaining tasks are executing on other threads.
    pool_.all_done_.wait(lock);
  }
}

void ThreadPool::ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) {
    return;
  }
  const std::size_t threads = static_cast<std::size_t>(num_threads());
  if (n == 1 || threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  const std::size_t chunks = std::min(n, threads + 1);  // +1: the caller helps.
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  TaskGroup group(*this);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk_size;
    const std::size_t end = std::min(n, begin + chunk_size);
    if (begin >= end) {
      break;
    }
    group.Submit([begin, end, &fn] {
      for (std::size_t i = begin; i < end; ++i) {
        fn(i);
      }
    });
  }
  group.Wait();
}

}  // namespace eva
