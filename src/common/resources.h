// Multi-dimensional resource vectors used throughout Eva.
//
// The paper's scheduling problem is defined over three resource types
// (GPU, CPU, RAM); see Table 2. Demands and capacities are modeled as a
// fixed-size vector of doubles so that fractional demands (as found in the
// Alibaba trace) are representable.

#ifndef SRC_COMMON_RESOURCES_H_
#define SRC_COMMON_RESOURCES_H_

#include <array>
#include <cstddef>
#include <string>

namespace eva {

// The resource dimensions of the scheduling problem (set R in the paper).
enum class Resource : int {
  kGpu = 0,
  kCpu = 1,
  kRamGb = 2,
};

inline constexpr int kNumResources = 3;

// Returns a short human-readable name ("GPU", "CPU", "RAM").
const char* ResourceName(Resource r);

// A point in resource space: either a task demand D_tau or an instance
// capacity Q_k. Components are non-negative by convention; arithmetic that
// would produce negative components is permitted (used for "remaining
// capacity" bookkeeping) and checked via IsNonNegative().
class ResourceVector {
 public:
  constexpr ResourceVector() : values_{0.0, 0.0, 0.0} {}
  constexpr ResourceVector(double gpus, double cpus, double ram_gb)
      : values_{gpus, cpus, ram_gb} {}

  constexpr double gpus() const { return values_[0]; }
  constexpr double cpus() const { return values_[1]; }
  constexpr double ram_gb() const { return values_[2]; }

  constexpr double Get(Resource r) const { return values_[static_cast<int>(r)]; }
  void Set(Resource r, double value) { values_[static_cast<int>(r)] = value; }

  // Component-wise comparison with a small epsilon so that repeated
  // add/subtract cycles do not spuriously reject an exact fit.
  bool FitsWithin(const ResourceVector& capacity) const;

  bool IsZero() const;
  bool IsNonNegative() const;

  ResourceVector& operator+=(const ResourceVector& other);
  ResourceVector& operator-=(const ResourceVector& other);
  friend ResourceVector operator+(ResourceVector a, const ResourceVector& b) { return a += b; }
  friend ResourceVector operator-(ResourceVector a, const ResourceVector& b) { return a -= b; }
  friend bool operator==(const ResourceVector& a, const ResourceVector& b) {
    return a.values_ == b.values_;
  }

  // Scales every component, e.g. for computing average utilization.
  ResourceVector Scaled(double factor) const;

  // "[g=1, c=4, m=24]" — matches the paper's demand-vector notation.
  std::string ToString() const;

 private:
  std::array<double, kNumResources> values_;
};

}  // namespace eva

#endif  // SRC_COMMON_RESOURCES_H_
