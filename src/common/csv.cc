#include "src/common/csv.h"

#include <fstream>
#include <sstream>

namespace eva {

std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // Tolerate CRLF input.
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string EscapeCsvField(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quoting) {
    return field;
  }
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

std::string JoinCsvLine(const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) {
      out.push_back(',');
    }
    out += EscapeCsvField(fields[i]);
  }
  return out;
}

std::optional<CsvTable> CsvTable::Parse(const std::string& text) {
  std::istringstream stream(text);
  std::string line;
  if (!std::getline(stream, line)) {
    return std::nullopt;
  }
  CsvTable table(ParseCsvLine(line));
  const std::size_t width = table.header_.size();
  while (std::getline(stream, line)) {
    if (line.empty()) {
      continue;
    }
    std::vector<std::string> row = ParseCsvLine(line);
    if (row.size() != width) {
      return std::nullopt;
    }
    table.rows_.push_back(std::move(row));
  }
  return table;
}

std::optional<CsvTable> CsvTable::Load(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return Parse(buffer.str());
}

CsvTable::CsvTable(std::vector<std::string> header) : header_(std::move(header)) {}

void CsvTable::AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

int CsvTable::ColumnIndex(const std::string& name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

const std::string& CsvTable::Field(std::size_t row, const std::string& column) const {
  static const std::string kEmpty;
  const int col = ColumnIndex(column);
  if (col < 0 || row >= rows_.size()) {
    return kEmpty;
  }
  return rows_[row][static_cast<std::size_t>(col)];
}

std::string CsvTable::ToString() const {
  std::string out = JoinCsvLine(header_);
  out.push_back('\n');
  for (const auto& row : rows_) {
    out += JoinCsvLine(row);
    out.push_back('\n');
  }
  return out;
}

bool CsvTable::Save(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    return false;
  }
  file << ToString();
  return static_cast<bool>(file);
}

}  // namespace eva
