#include "src/common/arena.h"

#include <algorithm>

namespace eva {

void* MonotonicArena::AllocateSlow(std::size_t bytes, std::size_t align) {
  // Try the remaining pre-existing chunks (after a Reset they are all
  // retained); otherwise grow. An oversized request gets its own chunk so a
  // single large spike does not inflate the doubling sequence.
  while (true) {
    if (chunk_ < chunks_.size()) {
      const std::size_t offset = (offset_ + (align - 1)) & ~(align - 1);
      if (offset + bytes <= chunks_[chunk_].size) {
        void* p = chunks_[chunk_].data.get() + offset;
        offset_ = offset + bytes;
        return p;
      }
      ++chunk_;
      offset_ = 0;
      continue;
    }
    std::size_t next_size =
        chunks_.empty() ? min_chunk_bytes_
                        : std::min(chunks_.back().size * 2, kMaxChunkBytes);
    next_size = std::max(next_size, bytes + align);
    Chunk chunk;
    chunk.data = std::make_unique<unsigned char[]>(next_size);
    chunk.size = next_size;
    chunks_.push_back(std::move(chunk));
    chunk_ = chunks_.size() - 1;
    offset_ = 0;
  }
}

std::size_t MonotonicArena::BytesUsed() const {
  std::size_t used = 0;
  for (std::size_t i = 0; i < chunk_ && i < chunks_.size(); ++i) {
    used += chunks_[i].size;
  }
  return used + offset_;
}

std::size_t MonotonicArena::BytesReserved() const {
  std::size_t total = 0;
  for (const Chunk& chunk : chunks_) {
    total += chunk.size;
  }
  return total;
}

}  // namespace eva
