#include "src/common/resources.h"

#include <cmath>
#include <cstdio>

namespace eva {
namespace {

// Tolerance for capacity checks. Demands in the traces carry at most two
// decimal places, so 1e-9 is far below any meaningful quantum.
constexpr double kEpsilon = 1e-9;

}  // namespace

const char* ResourceName(Resource r) {
  switch (r) {
    case Resource::kGpu:
      return "GPU";
    case Resource::kCpu:
      return "CPU";
    case Resource::kRamGb:
      return "RAM";
  }
  return "?";
}

bool ResourceVector::FitsWithin(const ResourceVector& capacity) const {
  for (int i = 0; i < kNumResources; ++i) {
    if (values_[i] > capacity.values_[i] + kEpsilon) {
      return false;
    }
  }
  return true;
}

bool ResourceVector::IsZero() const {
  for (double v : values_) {
    if (std::fabs(v) > kEpsilon) {
      return false;
    }
  }
  return true;
}

bool ResourceVector::IsNonNegative() const {
  for (double v : values_) {
    if (v < -kEpsilon) {
      return false;
    }
  }
  return true;
}

ResourceVector& ResourceVector::operator+=(const ResourceVector& other) {
  for (int i = 0; i < kNumResources; ++i) {
    values_[i] += other.values_[i];
  }
  return *this;
}

ResourceVector& ResourceVector::operator-=(const ResourceVector& other) {
  for (int i = 0; i < kNumResources; ++i) {
    values_[i] -= other.values_[i];
  }
  return *this;
}

ResourceVector ResourceVector::Scaled(double factor) const {
  ResourceVector out = *this;
  for (int i = 0; i < kNumResources; ++i) {
    out.values_[i] *= factor;
  }
  return out;
}

std::string ResourceVector::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "[g=%.2f, c=%.2f, m=%.2f]", values_[0], values_[1], values_[2]);
  return buf;
}

}  // namespace eva
