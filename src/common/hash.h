// Shared hash-mixing helper for the hand-rolled hash-map keys.

#ifndef SRC_COMMON_HASH_H_
#define SRC_COMMON_HASH_H_

#include <cstddef>

namespace eva {

// Boost-style mix; good enough for the small key spaces of the scheduler's
// memoization caches and throughput-table keys.
inline std::size_t HashCombine(std::size_t seed, std::size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace eva

#endif  // SRC_COMMON_HASH_H_
