#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace eva {

void RunningStats::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return count_ == 0 ? 0.0 : max_; }

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (double v : values) {
    total += v;
  }
  return total / static_cast<double>(values.size());
}

double Median(std::vector<double> values) { return Quantile(std::move(values), 0.5); }

void TimeWeightedAverage::Add(double value, double duration) {
  if (duration <= 0.0) {
    return;
  }
  weighted_sum_ += value * duration;
  total_duration_ += duration;
}

double TimeWeightedAverage::Average() const {
  return total_duration_ == 0.0 ? 0.0 : weighted_sum_ / total_duration_;
}

std::vector<std::pair<double, double>> EmpiricalCdf(std::vector<double> values) {
  std::vector<std::pair<double, double>> out;
  if (values.empty()) {
    return out;
  }
  std::sort(values.begin(), values.end());
  out.reserve(values.size());
  const double n = static_cast<double>(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out.emplace_back(values[i], static_cast<double>(i + 1) / n);
  }
  return out;
}

std::string MeanPlusMinus(const RunningStats& stats, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f ± %.*f", precision, stats.mean(), precision,
                stats.stddev());
  return buf;
}

}  // namespace eva
