// Minimal CSV reading/writing for traces and experiment output.
//
// Supports the subset of RFC 4180 the trace files need: comma separation,
// double-quote quoting with doubled-quote escapes, and a header row.

#ifndef SRC_COMMON_CSV_H_
#define SRC_COMMON_CSV_H_

#include <optional>
#include <string>
#include <vector>

namespace eva {

// Splits a single CSV line into fields, honoring quotes.
std::vector<std::string> ParseCsvLine(const std::string& line);

// Quotes a field if it contains a comma, quote, or newline.
std::string EscapeCsvField(const std::string& field);

// Joins fields into one CSV line (no trailing newline).
std::string JoinCsvLine(const std::vector<std::string>& fields);

// A parsed CSV document: a header plus data rows aligned to it.
class CsvTable {
 public:
  // Parses from text. Returns nullopt on structural errors (rows with a
  // different field count than the header, unterminated quotes).
  static std::optional<CsvTable> Parse(const std::string& text);

  // Reads and parses a file. Returns nullopt if the file cannot be read or
  // parsed.
  static std::optional<CsvTable> Load(const std::string& path);

  explicit CsvTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  const std::vector<std::string>& header() const { return header_; }
  std::size_t NumRows() const { return rows_.size(); }
  const std::vector<std::string>& Row(std::size_t i) const { return rows_[i]; }

  // Column index by name, or -1 if not present.
  int ColumnIndex(const std::string& name) const;

  // Field access by row index and column name; empty string if missing.
  const std::string& Field(std::size_t row, const std::string& column) const;

  // Serializes (header + rows) with '\n' line endings.
  std::string ToString() const;

  // Writes to a file; returns false on I/O failure.
  bool Save(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace eva

#endif  // SRC_COMMON_CSV_H_
