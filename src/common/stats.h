// Descriptive statistics used by the metrics pipeline and the benches.

#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace eva {

// Streaming accumulator for count/mean/variance/min/max (Welford's method).
class RunningStats {
 public:
  void Add(double value);

  std::size_t count() const { return count_; }
  double mean() const;
  double variance() const;  // Sample variance (n-1 denominator); 0 if n < 2.
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Quantile of a sample using linear interpolation between order statistics
// (the "R-7" definition used by numpy). q in [0, 1]. Returns 0 for empty
// samples.
double Quantile(std::vector<double> values, double q);

double Mean(const std::vector<double>& values);
double Median(std::vector<double> values);

// Time-weighted average of a piecewise-constant signal: the i-th value holds
// over the i-th duration. Returns 0 if total duration is 0.
class TimeWeightedAverage {
 public:
  void Add(double value, double duration);
  double Average() const;
  double total_duration() const { return total_duration_; }

 private:
  double weighted_sum_ = 0.0;
  double total_duration_ = 0.0;
};

// Empirical CDF support: returns the sorted sample together with cumulative
// probabilities, formatted as "value,cdf" rows. Used to emit Figure 3.
std::vector<std::pair<double, double>> EmpiricalCdf(std::vector<double> values);

// Formats "12.34 ± 0.56" the way the paper's tables do.
std::string MeanPlusMinus(const RunningStats& stats, int precision = 2);

}  // namespace eva

#endif  // SRC_COMMON_STATS_H_
