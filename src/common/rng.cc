#include "src/common/rng.h"

#include <cassert>
#include <cmath>

namespace eva {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 uniform bits into [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Modulo bias is < 2^-40 for the span sizes used here; acceptable.
  return lo + static_cast<std::int64_t>(NextU64() % span);
}

double Rng::Exponential(double rate) {
  assert(rate > 0.0);
  double u = NextDouble();
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -std::log(1.0 - u) / rate;
}

double Rng::Normal(double mean, double stddev) {
  // C++17 has no std::numbers::pi; keep the constant local.
  constexpr double kPi = 3.14159265358979323846;
  double u1 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * radius * std::cos(2.0 * kPi * u2);
}

double Rng::LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

double Rng::Pareto(double x_m, double alpha) {
  assert(x_m > 0.0 && alpha > 0.0);
  double u = NextDouble();
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return x_m / std::pow(1.0 - u, 1.0 / alpha);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

std::size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    total += (w > 0.0 ? w : 0.0);
  }
  assert(total > 0.0);
  double point = NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (point < w) {
      return i;
    }
    point -= w;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace eva
