// Shared printf conversion helpers for fixed-width integers.
//
// The tally widths in SimulationMetrics/FederationStats are std::int64_t,
// which has no portable plain-printf conversion — `%lld` assumes int64_t is
// long long (it is `long` on LP64 Linux), and sprinkling
// static_cast<long long> at every call site is noise. Spell the <cinttypes>
// macros once here and pass the 64-bit value unchanged:
//
//   std::printf("barriers=" EVA_PRId64 "\n", stats.barriers);
//
// String-literal concatenation keeps these usable inside larger format
// strings and compatible with __attribute__((format(printf, ...))).

#ifndef SRC_COMMON_FORMAT_H_
#define SRC_COMMON_FORMAT_H_

#include <cinttypes>

#define EVA_PRId64 "%" PRId64
#define EVA_PRIu64 "%" PRIu64

#endif  // SRC_COMMON_FORMAT_H_
