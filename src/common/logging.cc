#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace eva {
namespace internal {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};
}  // namespace internal
using internal::g_log_level;
namespace {

// The active sink. Writes are serialised by stdio's own per-FILE lock; the
// pointer itself only changes in SetLogFile (setup/test code, not the hot
// loop), published with release so a concurrently logging thread sees a
// fully opened FILE.
std::atomic<std::FILE*> g_log_file{nullptr};

std::FILE* LogSink() {
  std::FILE* file = g_log_file.load(std::memory_order_acquire);
  return file != nullptr ? file : stderr;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kNone:
      return "NONE";
  }
  return "?";
}

bool ParseLogLevel(const char* text, LogLevel* out) {
  struct NamedLevel {
    const char* name;
    LogLevel level;
  };
  static const NamedLevel kNames[] = {
      {"debug", LogLevel::kDebug},     {"info", LogLevel::kInfo},
      {"warning", LogLevel::kWarning}, {"warn", LogLevel::kWarning},
      {"error", LogLevel::kError},     {"none", LogLevel::kNone},
  };
  for (const NamedLevel& named : kNames) {
    if (std::strcmp(text, named.name) == 0) {
      *out = named.level;
      return true;
    }
  }
  if (text[0] >= '0' && text[0] <= '4' && text[1] == '\0') {
    *out = static_cast<LogLevel>(text[0] - '0');
    return true;
  }
  return false;
}

// Reads the environment once before main(), so EVA_LOG_LEVEL=debug works
// on every binary without per-driver wiring.
struct EnvInitializer {
  EnvInitializer() { InitLoggingFromEnv(); }
} g_env_initializer;

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

bool SetLogFile(const char* path) {
  std::FILE* previous = g_log_file.exchange(nullptr);
  if (previous != nullptr) std::fclose(previous);
  if (path == nullptr) return true;
  std::FILE* file = std::fopen(path, "a");
  if (file == nullptr) return false;
  g_log_file.store(file, std::memory_order_release);
  return true;
}

void InitLoggingFromEnv() {
  if (const char* level_text = std::getenv("EVA_LOG_LEVEL")) {
    LogLevel level;
    if (ParseLogLevel(level_text, &level)) {
      SetLogLevel(level);
    } else {
      std::fprintf(stderr, "[WARN] unrecognised EVA_LOG_LEVEL '%s' ignored\n",
                   level_text);
    }
  }
  if (const char* path = std::getenv("EVA_LOG_FILE")) {
    if (!SetLogFile(path[0] != '\0' ? path : nullptr)) {
      std::fprintf(stderr, "[WARN] cannot open EVA_LOG_FILE '%s'; "
                           "logging to stderr\n",
                   path);
    }
  }
}

void LogMessage(LogLevel level, const char* format, ...) {
  if (static_cast<int>(level) < g_log_level.load()) {
    return;
  }
  std::FILE* sink = LogSink();
  std::fprintf(sink, "[%s] ", LevelName(level));
  va_list args;
  va_start(args, format);
  std::vfprintf(sink, format, args);
  va_end(args);
  std::fputc('\n', sink);
  if (sink != stderr) std::fflush(sink);
}

}  // namespace eva
