#include "src/common/logging.h"

#include <atomic>
#include <cstdio>

namespace eva {
namespace internal {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};
}  // namespace internal
using internal::g_log_level;
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kNone:
      return "NONE";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

void LogMessage(LogLevel level, const char* format, ...) {
  if (static_cast<int>(level) < g_log_level.load()) {
    return;
  }
  std::fprintf(stderr, "[%s] ", LevelName(level));
  va_list args;
  va_start(args, format);
  std::vfprintf(stderr, format, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace eva
