// Deterministic pseudo-random number generation.
//
// All experiment randomness flows through Rng instances seeded by the
// harness, so every table and figure in EXPERIMENTS.md is reproducible
// bit-for-bit. The generator is xoshiro256** (public domain, Blackman &
// Vigna) seeded via SplitMix64, implemented here to avoid a dependency on
// unspecified standard-library engine behavior across platforms.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <array>
#include <cstdint>
#include <vector>

namespace eva {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Raw 64 uniform bits.
  std::uint64_t NextU64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  // Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double Exponential(double rate);

  // Standard normal via Box-Muller.
  double Normal(double mean, double stddev);

  // Lognormal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);

  // Pareto with scale x_m > 0 and shape alpha > 0.
  double Pareto(double x_m, double alpha);

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Index in [0, weights.size()) sampled proportionally to weights.
  // Requires at least one strictly positive weight.
  std::size_t Categorical(const std::vector<double>& weights);

  // Derives an independent child generator; useful for giving each
  // subsystem its own stream so adding draws in one place does not perturb
  // another.
  Rng Fork();

  // Order-sensitive digest of the generator state — the "cursor" the
  // divergence flight recorder snapshots per round. Two generators compare
  // equal here iff they have consumed identical draw sequences from the
  // same seed. Does not advance the state.
  std::uint64_t StateHash() const {
    std::uint64_t hash = 0x9e3779b97f4a7c15ULL;
    for (std::uint64_t word : state_) {
      hash ^= word + 0x9e3779b97f4a7c15ULL + (hash << 6) + (hash >> 2);
      // SplitMix64 finalizer round, so single-bit state deltas avalanche.
      hash = (hash ^ (hash >> 30)) * 0xbf58476d1ce4e5b9ULL;
      hash = (hash ^ (hash >> 27)) * 0x94d049bb133111ebULL;
      hash ^= hash >> 31;
    }
    return hash;
  }

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace eva

#endif  // SRC_COMMON_RNG_H_
