// Monotonic bump arenas and per-thread scratch leases — the memory layer
// the hot per-round and per-event paths allocate from.
//
// Three pieces, smallest first:
//   * MonotonicArena — chunked bump allocator. Allocate() is a pointer bump;
//     Reset() is O(1) and keeps every chunk, so a round-scoped arena reaches
//     a steady state where scheduling rounds perform zero heap allocations.
//     Mark()/Rewind() give stack-like frames for recursive users (the B&B
//     solver rewinds per branch node instead of freeing per-node vectors).
//   * ArenaAllocator<T> — std::allocator shim over a MonotonicArena so STL
//     containers can live in an arena. Deallocate is a no-op; memory comes
//     back at the owner's Reset()/Rewind(). Containers must not outlive it.
//   * ScratchLease<T> — a per-(thread, nesting-depth) pooled instance of T.
//     This generalizes the packing-scratch idiom: a plain `thread_local T`
//     breaks under the ThreadPool's helping Wait(), which can re-enter the
//     leasing code on the same thread with the outer lease still live, so
//     leases are framed by depth. Steady state: zero allocations, and —
//     unlike ad-hoc thread_locals scattered per call site — one audited
//     mechanism, so pool-size determinism is easy to reason about (scratch
//     never carries values between uses; every user fully rewrites it).
//
// Ownership rule used throughout the engine: an arena (or scratch frame) is
// owned by exactly one long-lived object (a solver worker, a packing call, a
// scheduling round) and reset at that owner's boundary. Nothing allocated
// from it may escape the owner; anything that crosses an API boundary is
// copied into caller-owned storage first.

#ifndef SRC_COMMON_ARENA_H_
#define SRC_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace eva {

class MonotonicArena {
 public:
  // `min_chunk_bytes` is the size of the first chunk; later chunks double
  // until kMaxChunkBytes. Requests larger than the current chunk get a
  // dedicated chunk of exactly the requested size.
  explicit MonotonicArena(std::size_t min_chunk_bytes = 1 << 12)
      : min_chunk_bytes_(min_chunk_bytes) {}

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  void* Allocate(std::size_t bytes, std::size_t align) {
    std::size_t offset = (offset_ + (align - 1)) & ~(align - 1);
    if (chunk_ >= chunks_.size() || offset + bytes > chunks_[chunk_].size) {
      return AllocateSlow(bytes, align);
    }
    void* p = chunks_[chunk_].data.get() + offset;
    offset_ = offset + bytes;
    return p;
  }

  template <typename T>
  T* AllocateArray(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  // O(1): rewinds to the first chunk, keeping every chunk's memory. All
  // outstanding allocations become invalid.
  void Reset() {
    chunk_ = 0;
    offset_ = 0;
  }

  // Frees every chunk (destructor behavior, callable early).
  void Release() {
    chunks_.clear();
    chunks_.shrink_to_fit();
    Reset();
  }

  // Stack-like frames: Mark() the current position, allocate freely, then
  // Rewind() to reclaim everything allocated since — O(1), keeps chunks.
  struct Marker {
    std::size_t chunk = 0;
    std::size_t offset = 0;
  };
  Marker Mark() const { return {chunk_, offset_}; }
  void Rewind(Marker m) {
    chunk_ = m.chunk;
    offset_ = m.offset;
  }

  // Bytes handed out since the last Reset (diagnostic; alignment included).
  std::size_t BytesUsed() const;
  // Total bytes held in chunks (high-water reservation).
  std::size_t BytesReserved() const;

 private:
  struct Chunk {
    std::unique_ptr<unsigned char[]> data;
    std::size_t size = 0;
  };

  static constexpr std::size_t kMaxChunkBytes = std::size_t{1} << 22;

  void* AllocateSlow(std::size_t bytes, std::size_t align);

  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;   // Index of the chunk being bumped.
  std::size_t offset_ = 0;  // Bump offset within chunks_[chunk_].
  std::size_t min_chunk_bytes_;
};

// std::allocator shim over a MonotonicArena. The arena must outlive every
// container using it; deallocate is a no-op (memory returns on Reset).
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(MonotonicArena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) {}

  MonotonicArena* arena() const { return arena_; }

  // Propagate on container copy/move/swap: a container's memory must always
  // come from the arena it was constructed against.
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) {
    return !(a == b);
  }

 private:
  MonotonicArena* arena_;
};

template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

// Leases the calling thread's pooled instance of T for the current nesting
// depth. The first lease at a given (thread, depth) default-constructs the
// instance; later leases reuse it with whatever capacity its last user
// grew, so steady-state leasing allocates nothing. The contents are
// unspecified on acquire — users must clear/rewrite what they read.
template <typename T>
class ScratchLease {
 public:
  ScratchLease() {
    auto& pool = Pool();
    if (static_cast<std::size_t>(pool.depth) >= pool.frames.size()) {
      pool.frames.push_back(std::make_unique<T>());
    }
    ptr_ = pool.frames[static_cast<std::size_t>(pool.depth)].get();
    ++pool.depth;
  }
  ~ScratchLease() { --Pool().depth; }

  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;

  T& operator*() const { return *ptr_; }
  T* operator->() const { return ptr_; }

 private:
  struct FramePool {
    std::vector<std::unique_ptr<T>> frames;
    int depth = 0;
  };
  static FramePool& Pool() {
    static thread_local FramePool pool;
    return pool;
  }

  T* ptr_;
};

// A leased per-thread arena, Reset() on acquire: the standard way to get
// round- or call-scoped bump storage inside parallel sections (Full∥Partial
// reconfiguration, the parallel B&B workers). Nested leases on the same
// thread get distinct arenas (depth frames), so a helping Wait() that
// re-enters arena-using code cannot clobber the outer frame.
class ScratchArena {
 public:
  ScratchArena() { lease_->Reset(); }
  MonotonicArena& operator*() const { return *lease_; }
  MonotonicArena* operator->() const { return lease_.operator->(); }
  MonotonicArena* get() const { return lease_.operator->(); }

 private:
  ScratchLease<MonotonicArena> lease_;
};

}  // namespace eva

#endif  // SRC_COMMON_ARENA_H_
