#include "src/solver/bnb_solver.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "src/core/full_reconfig.h"
#include "src/sched/reservation_price.h"

namespace eva {
namespace {

using Clock = std::chrono::steady_clock;

// Cheapest per-unit price of each resource across the catalog, using the
// capacity on the family where it is largest relative to cost.
std::array<double, kNumResources> UnitPrices(const InstanceCatalog& catalog) {
  std::array<double, kNumResources> unit{};
  for (int r = 0; r < kNumResources; ++r) {
    double best = std::numeric_limits<double>::infinity();
    for (const InstanceType& type : catalog.types()) {
      const double capacity = type.capacity.Get(static_cast<Resource>(r));
      if (capacity > 0.0) {
        best = std::min(best, type.cost_per_hour / capacity);
      }
    }
    unit[static_cast<std::size_t>(r)] = std::isfinite(best) ? best : 0.0;
  }
  return unit;
}

// Minimum resource consumption of a task across families (a task will
// consume at least this much of r wherever it is placed).
ResourceVector MinDemand(const TaskInfo& task) {
  ResourceVector demand = task.demand_p3;
  for (int r = 0; r < kNumResources; ++r) {
    const Resource res = static_cast<Resource>(r);
    demand.Set(res, std::min(task.demand_p3.Get(res), task.demand_cpu.Get(res)));
  }
  return demand;
}

struct OpenInstance {
  int type_index;
  ResourceVector used;
  std::vector<TaskId> tasks;
};

class Search {
 public:
  Search(const SchedulingContext& context, const SolverOptions& options)
      : context_(context),
        options_(options),
        unit_prices_(UnitPrices(*context.catalog)),
        start_(Clock::now()) {
    for (const TaskInfo& task : context.tasks) {
      tasks_.push_back(&task);
    }
    // Branch on the "hardest" tasks first: descending reservation price.
    const TnrpCalculator calculator(context, {.interference_aware = false});
    std::sort(tasks_.begin(), tasks_.end(),
              [&calculator](const TaskInfo* a, const TaskInfo* b) {
                const Money rp_a = calculator.ReservationPrice(*a);
                const Money rp_b = calculator.ReservationPrice(*b);
                if (rp_a != rp_b) {
                  return rp_a > rp_b;
                }
                return a->id < b->id;
              });
    // Suffix lower bounds: bound on cost of tasks_[i..).
    suffix_bound_.assign(tasks_.size() + 1, 0.0);
    std::array<double, kNumResources> volume{};
    for (std::size_t i = tasks_.size(); i-- > 0;) {
      const ResourceVector demand = MinDemand(*tasks_[i]);
      for (int r = 0; r < kNumResources; ++r) {
        volume[static_cast<std::size_t>(r)] += demand.Get(static_cast<Resource>(r));
      }
      double bound = 0.0;
      for (int r = 0; r < kNumResources; ++r) {
        bound = std::max(bound, volume[static_cast<std::size_t>(r)] *
                                    unit_prices_[static_cast<std::size_t>(r)]);
      }
      suffix_bound_[i] = bound;
    }
  }

  void SetIncumbent(const ClusterConfig& config) {
    incumbent_ = config;
    incumbent_cost_ = config.HourlyCost(*context_.catalog);
  }

  SolverResult Run() {
    std::vector<OpenInstance> open;
    Branch(0, 0.0, open);
    SolverResult result;
    result.config = incumbent_;
    result.hourly_cost = incumbent_cost_;
    result.proven_optimal = !aborted_;
    result.nodes_explored = nodes_;
    result.wall_seconds =
        std::chrono::duration<double>(Clock::now() - start_).count();
    return result;
  }

 private:
  bool TimeExceeded() {
    if (aborted_) {
      return true;
    }
    if (nodes_ > options_.max_nodes) {
      aborted_ = true;
      return true;
    }
    // Check the wall clock every 4096 nodes to keep overhead negligible.
    if ((nodes_ & 0xFFF) == 0 &&
        std::chrono::duration<double>(Clock::now() - start_).count() >
            options_.time_limit_seconds) {
      aborted_ = true;
      return true;
    }
    return false;
  }

  void Branch(std::size_t next_task, Money cost_so_far, std::vector<OpenInstance>& open) {
    ++nodes_;
    if (TimeExceeded()) {
      return;
    }
    if (next_task == tasks_.size()) {
      if (cost_so_far < incumbent_cost_ - 1e-12) {
        incumbent_cost_ = cost_so_far;
        incumbent_.instances.clear();
        for (const OpenInstance& instance : open) {
          ConfigInstance entry;
          entry.type_index = instance.type_index;
          entry.tasks = instance.tasks;
          incumbent_.instances.push_back(std::move(entry));
        }
      }
      return;
    }
    if (cost_so_far + suffix_bound_[next_task] >= incumbent_cost_ - 1e-12) {
      return;  // Prune: even a fractional relaxation cannot beat incumbent.
    }
    const TaskInfo& task = *tasks_[next_task];

    // Option A: place into an existing open instance. Skip duplicates of
    // (type, used) states to break symmetry among identical instances.
    for (std::size_t i = 0; i < open.size(); ++i) {
      bool duplicate = false;
      for (std::size_t j = 0; j < i; ++j) {
        if (open[j].type_index == open[i].type_index && open[j].used == open[i].used) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) {
        continue;
      }
      const InstanceType& type = context_.catalog->Get(open[i].type_index);
      const ResourceVector& demand = task.DemandFor(type.family);
      if (!(open[i].used + demand).FitsWithin(type.capacity)) {
        continue;
      }
      open[i].used += demand;
      open[i].tasks.push_back(task.id);
      Branch(next_task + 1, cost_so_far, open);
      open[i].tasks.pop_back();
      open[i].used -= demand;
      if (aborted_) {
        return;
      }
    }

    // Option B: open a fresh instance of each type that fits, cheapest
    // first so good incumbents appear early.
    std::vector<int> fitting;
    for (int k = 0; k < context_.catalog->NumTypes(); ++k) {
      const InstanceType& type = context_.catalog->Get(k);
      if (task.DemandFor(type.family).FitsWithin(type.capacity)) {
        fitting.push_back(k);
      }
    }
    std::sort(fitting.begin(), fitting.end(), [this](int a, int b) {
      return context_.catalog->Get(a).cost_per_hour < context_.catalog->Get(b).cost_per_hour;
    });
    for (int type_index : fitting) {
      const InstanceType& type = context_.catalog->Get(type_index);
      if (cost_so_far + type.cost_per_hour >= incumbent_cost_ - 1e-12) {
        break;  // Sorted ascending; all later types cost at least as much.
      }
      OpenInstance fresh;
      fresh.type_index = type_index;
      fresh.used = task.DemandFor(type.family);
      fresh.tasks.push_back(task.id);
      open.push_back(std::move(fresh));
      Branch(next_task + 1, cost_so_far + type.cost_per_hour, open);
      open.pop_back();
      if (aborted_) {
        return;
      }
    }
  }

  const SchedulingContext& context_;
  SolverOptions options_;
  std::array<double, kNumResources> unit_prices_;
  Clock::time_point start_;

  std::vector<const TaskInfo*> tasks_;
  std::vector<double> suffix_bound_;

  ClusterConfig incumbent_;
  Money incumbent_cost_ = std::numeric_limits<double>::infinity();
  std::uint64_t nodes_ = 0;
  bool aborted_ = false;
};

}  // namespace

Money PackingLowerBound(const SchedulingContext& context,
                        const std::vector<const TaskInfo*>& tasks) {
  const std::array<double, kNumResources> unit = UnitPrices(*context.catalog);
  std::array<double, kNumResources> volume{};
  for (const TaskInfo* task : tasks) {
    const ResourceVector demand = MinDemand(*task);
    for (int r = 0; r < kNumResources; ++r) {
      volume[static_cast<std::size_t>(r)] += demand.Get(static_cast<Resource>(r));
    }
  }
  Money bound = 0.0;
  for (int r = 0; r < kNumResources; ++r) {
    bound = std::max(bound,
                     volume[static_cast<std::size_t>(r)] * unit[static_cast<std::size_t>(r)]);
  }
  return bound;
}

SolverResult SolveOptimalPacking(const SchedulingContext& context,
                                 const SolverOptions& options) {
  Search search(context, options);
  if (options.seed_with_heuristic) {
    const TnrpCalculator calculator(context, {.interference_aware = false});
    search.SetIncumbent(FullReconfiguration(context, calculator));
  }
  return search.Run();
}

}  // namespace eva
