#include "src/solver/bnb_solver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "src/common/arena.h"
#include "src/common/thread_pool.h"
#include "src/core/full_reconfig.h"
#include "src/sched/reservation_price.h"

namespace eva {
namespace {

using Clock = std::chrono::steady_clock;

constexpr Money kCostEps = 1e-12;

// Cheapest per-unit price of each resource across the catalog, using the
// capacity on the family where it is largest relative to cost.
std::array<double, kNumResources> UnitPrices(const InstanceCatalog& catalog) {
  std::array<double, kNumResources> unit{};
  for (int r = 0; r < kNumResources; ++r) {
    double best = std::numeric_limits<double>::infinity();
    for (const InstanceType& type : catalog.types()) {
      const double capacity = type.capacity.Get(static_cast<Resource>(r));
      if (capacity > 0.0) {
        best = std::min(best, type.cost_per_hour / capacity);
      }
    }
    unit[static_cast<std::size_t>(r)] = std::isfinite(best) ? best : 0.0;
  }
  return unit;
}

// Minimum resource consumption of a task across families (a task will
// consume at least this much of r wherever it is placed).
ResourceVector MinDemand(const TaskInfo& task) {
  ResourceVector demand = task.demand_p3;
  for (int r = 0; r < kNumResources; ++r) {
    const Resource res = static_cast<Resource>(r);
    demand.Set(res, std::min(task.demand_p3.Get(res), task.demand_cpu.Get(res)));
  }
  return demand;
}

struct OpenInstance {
  int type_index;
  ResourceVector used;
  std::vector<TaskId> tasks;

  bool operator==(const OpenInstance& other) const {
    return type_index == other.type_index && used == other.used && tasks == other.tasks;
  }
};

// Stack of open instances whose Pop() keeps the slot — and its tasks
// vector's capacity — alive for the next Push() at the same depth. The DFS
// pushes/pops an instance per fresh-open node; with a plain vector that was
// a heap allocation and free per node.
class OpenList {
 public:
  std::size_t size() const { return size_; }
  const OpenInstance& operator[](std::size_t i) const { return items_[i]; }
  OpenInstance& operator[](std::size_t i) { return items_[i]; }
  const OpenInstance* begin() const { return items_.data(); }
  const OpenInstance* end() const { return items_.data() + size_; }

  OpenInstance& Push() {
    if (size_ == items_.size()) {
      items_.emplace_back();
    }
    OpenInstance& slot = items_[size_++];
    slot.type_index = -1;
    slot.used = ResourceVector();
    slot.tasks.clear();
    return slot;
  }
  void Pop() { --size_; }

  void Assign(const std::vector<OpenInstance>& from) {
    size_ = 0;
    for (const OpenInstance& instance : from) {
      OpenInstance& slot = Push();
      slot.type_index = instance.type_index;
      slot.used = instance.used;
      slot.tasks = instance.tasks;
    }
  }

 private:
  std::vector<OpenInstance> items_;
  std::size_t size_ = 0;
};

// Immutable per-solve data shared by the serial search, the frontier
// expansion and every worker: branch order, suffix bounds, limits.
struct Problem {
  Problem(const SchedulingContext& context, const SolverOptions& options)
      : context(context), options(options), unit_prices(UnitPrices(*context.catalog)) {
    for (const TaskInfo& task : context.tasks) {
      tasks.push_back(&task);
    }
    // Branch on the "hardest" tasks first: descending reservation price.
    const TnrpCalculator calculator(context, {.interference_aware = false});
    SortTasksByRpDesc(calculator, tasks);
    // Per-resource suffix volumes of tasks[i..). The node-level bound
    // (SuffixBound below) first credits the slack already paid for in open
    // instances against these volumes: a plain volume-times-unit-price
    // suffix bound is NOT sound as an additive bound on the *remaining*
    // cost, because remaining tasks may ride along in open instances for
    // free — the original collapsed bound pruned genuinely optimal
    // branches (and reported "proven optimal" for non-optimal incumbents).
    suffix_volume.assign(tasks.size() + 1, {});
    std::array<double, kNumResources> volume{};
    for (std::size_t i = tasks.size(); i-- > 0;) {
      const ResourceVector demand = MinDemand(*tasks[i]);
      for (int r = 0; r < kNumResources; ++r) {
        volume[static_cast<std::size_t>(r)] += demand.Get(static_cast<Resource>(r));
      }
      suffix_volume[i] = volume;
    }
    // Per-task fitting instance types, cheapest-first — a pure function of
    // (task demands, catalog), so computing it once per solve instead of
    // once per node removes the search's dominant per-node allocation and
    // sort. Same comparator over the same input: identical order.
    fitting_by_task.resize(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      std::vector<int>& fitting = fitting_by_task[i];
      for (int k = 0; k < context.catalog->NumTypes(); ++k) {
        const InstanceType& type = context.catalog->Get(k);
        if (tasks[i]->DemandFor(type.family).FitsWithin(type.capacity)) {
          fitting.push_back(k);
        }
      }
      std::sort(fitting.begin(), fitting.end(), [&context](int a, int b) {
        return context.catalog->Get(a).cost_per_hour <
               context.catalog->Get(b).cost_per_hour;
      });
    }
  }

  // Sound lower bound on the cost of hosting tasks[next_task..) given the
  // instances already open (their unused capacity is free). `open` is any
  // range of OpenInstance (OpenList in the DFS, plain vector in the
  // frontier expansion).
  template <typename OpenRange>
  Money SuffixBound(std::size_t next_task, const OpenRange& open) const {
    std::array<double, kNumResources> residual = suffix_volume[next_task];
    for (const OpenInstance& instance : open) {
      const ResourceVector& capacity = context.catalog->Get(instance.type_index).capacity;
      for (int r = 0; r < kNumResources; ++r) {
        residual[static_cast<std::size_t>(r)] -=
            capacity.Get(static_cast<Resource>(r)) -
            instance.used.Get(static_cast<Resource>(r));
      }
    }
    Money bound = 0.0;
    for (int r = 0; r < kNumResources; ++r) {
      if (residual[static_cast<std::size_t>(r)] > 0.0) {
        bound = std::max(bound, residual[static_cast<std::size_t>(r)] *
                                    unit_prices[static_cast<std::size_t>(r)]);
      }
    }
    return bound;
  }

  const SchedulingContext& context;
  const SolverOptions& options;
  std::array<double, kNumResources> unit_prices;
  std::vector<const TaskInfo*> tasks;
  std::vector<std::array<double, kNumResources>> suffix_volume;
  std::vector<std::vector<int>> fitting_by_task;
};

// State shared between parallel workers. `best_cost` is a bound only — the
// configurations stay worker-local so subtree order can resolve ties.
struct SharedState {
  explicit SharedState(Money seed_cost) : best_cost(seed_cost) {}

  std::atomic<Money> best_cost;
  std::atomic<std::uint64_t> nodes{0};
  std::atomic<bool> aborted{false};
};

void LowerSharedBound(SharedState& shared, Money cost) {
  Money current = shared.best_cost.load(std::memory_order_relaxed);
  while (cost < current &&
         !shared.best_cost.compare_exchange_weak(current, cost, std::memory_order_relaxed)) {
  }
}

// One branching choice for a task: place it into open[open_index]
// (fresh == false) or open a new instance of type_index (fresh == true,
// adding cost_delta).
struct Choice {
  bool fresh = false;
  std::size_t open_index = 0;
  int type_index = -1;
  Money cost_delta = 0.0;
};

// Enumerates a node's children in serial DFS order: existing open instances
// first (skipping symmetric (type, used) duplicates), then fresh instances
// of each fitting type cheapest-first (precomputed per task in Problem),
// cut where `cost_bound` proves a fresh open cannot improve. Both the
// depth-first search and the parallel frontier expansion branch through
// this, so their orders cannot drift apart. Callers may re-check fresh
// choices against a live (tighter) bound. `out` is any vector of Choice —
// the DFS hands in an arena-backed one.
template <typename OpenRange, typename ChoiceVec>
void EnumerateChoices(const Problem& problem, std::size_t next_task,
                      const OpenRange& open, Money cost_so_far, Money cost_bound,
                      ChoiceVec& out) {
  const TaskInfo& task = *problem.tasks[next_task];
  out.clear();
  for (std::size_t i = 0; i < open.size(); ++i) {
    bool duplicate = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (open[j].type_index == open[i].type_index && open[j].used == open[i].used) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) {
      continue;
    }
    const InstanceType& type = problem.context.catalog->Get(open[i].type_index);
    if (!(open[i].used + task.DemandFor(type.family)).FitsWithin(type.capacity)) {
      continue;
    }
    Choice choice;
    choice.open_index = i;
    out.push_back(choice);
  }
  for (int type_index : problem.fitting_by_task[next_task]) {
    const InstanceType& type = problem.context.catalog->Get(type_index);
    if (cost_so_far + type.cost_per_hour >= cost_bound - kCostEps) {
      break;  // Sorted ascending; all later types cost at least as much.
    }
    Choice choice;
    choice.fresh = true;
    choice.type_index = type_index;
    choice.cost_delta = type.cost_per_hour;
    out.push_back(choice);
  }
}

// One depth-first search over a subtree, replicating the original serial
// search exactly when `shared` is null (the incumbent then carries the seed
// configuration and the prune bound is the local incumbent alone).
class Search {
 public:
  Search(const Problem& problem, Clock::time_point start, SharedState* shared)
      : problem_(problem), start_(start), shared_(shared) {}

  void SetIncumbent(const ClusterConfig& config, Money cost) {
    incumbent_ = config;
    incumbent_cost_ = cost;
  }

  void SetIncumbentBound(Money cost) { incumbent_cost_ = cost; }

  void Run(std::size_t next_task, Money cost_so_far, OpenList& open) {
    Branch(next_task, cost_so_far, open);
    if (shared_ != nullptr) {
      shared_->nodes.fetch_add(nodes_since_flush_, std::memory_order_relaxed);
      nodes_since_flush_ = 0;
      if (aborted_) {
        shared_->aborted.store(true, std::memory_order_relaxed);
      }
    }
  }

  const ClusterConfig& incumbent() const { return incumbent_; }
  Money incumbent_cost() const { return incumbent_cost_; }
  bool improved() const { return improved_; }
  bool aborted() const { return aborted_; }
  std::uint64_t nodes() const { return nodes_; }

 private:
  bool TimeExceeded() {
    if (aborted_) {
      return true;
    }
    if (shared_ != nullptr) {
      // Flush the local node count into the shared budget in batches, so
      // the global max_nodes limit is enforced within one batch's slack.
      if (nodes_since_flush_ >= 1024) {
        shared_->nodes.fetch_add(nodes_since_flush_, std::memory_order_relaxed);
        nodes_since_flush_ = 0;
      }
      if (shared_->aborted.load(std::memory_order_relaxed) ||
          shared_->nodes.load(std::memory_order_relaxed) > problem_.options.max_nodes) {
        aborted_ = true;
        return true;
      }
    } else if (nodes_ > problem_.options.max_nodes) {
      aborted_ = true;
      return true;
    }
    // Check the wall clock every 4096 nodes to keep overhead negligible.
    if ((nodes_ & 0xFFF) == 0 &&
        std::chrono::duration<double>(Clock::now() - start_).count() >
            problem_.options.time_limit_seconds) {
      aborted_ = true;
      return true;
    }
    return false;
  }

  bool PruneBound(Money optimistic) const {
    if (optimistic >= incumbent_cost_ - kCostEps) {
      return true;  // Cannot strictly improve the local incumbent.
    }
    // Foreign bound: strict-only pruning (`>` + eps) so a subtree still
    // reaches its own solutions that exactly tie the global optimum —
    // the fold then resolves the tie by subtree order, like serial DFS.
    return shared_ != nullptr &&
           optimistic > shared_->best_cost.load(std::memory_order_relaxed) + kCostEps;
  }

  void Branch(std::size_t next_task, Money cost_so_far, OpenList& open) {
    ++nodes_;
    ++nodes_since_flush_;
    if (TimeExceeded()) {
      return;
    }
    if (next_task == problem_.tasks.size()) {
      if (cost_so_far < incumbent_cost_ - kCostEps) {
        incumbent_cost_ = cost_so_far;
        improved_ = true;
        incumbent_.instances.clear();
        for (const OpenInstance& instance : open) {
          ConfigInstance entry;
          entry.type_index = instance.type_index;
          entry.tasks = instance.tasks;
          incumbent_.instances.push_back(std::move(entry));
        }
        if (shared_ != nullptr) {
          LowerSharedBound(*shared_, cost_so_far);
        }
      }
      return;
    }
    if (PruneBound(cost_so_far + problem_.SuffixBound(next_task, open))) {
      return;  // Prune: even a fractional relaxation cannot beat incumbent.
    }
    const TaskInfo& task = *problem_.tasks[next_task];

    // Per-node choice list in the worker's arena: the node marks, fills,
    // recurses, rewinds — stack discipline, so deeper nodes' allocations
    // land above this mark and are reclaimed before it.
    const MonotonicArena::Marker mark = arena_.Mark();
    ArenaVector<Choice> choices{ArenaAllocator<Choice>(&arena_)};
    EnumerateChoices(problem_, next_task, open, cost_so_far, incumbent_cost_, choices);
    for (const Choice& choice : choices) {
      if (choice.fresh) {
        // Re-check against the live incumbent: deeper subtrees of this very
        // node may have tightened it past the bound EnumerateChoices used.
        if (cost_so_far + choice.cost_delta >= incumbent_cost_ - kCostEps) {
          break;  // Fresh choices are cheapest-first; the rest cost more.
        }
        const InstanceType& type = problem_.context.catalog->Get(choice.type_index);
        OpenInstance& fresh = open.Push();
        fresh.type_index = choice.type_index;
        fresh.used = task.DemandFor(type.family);
        fresh.tasks.push_back(task.id);
        Branch(next_task + 1, cost_so_far + choice.cost_delta, open);
        open.Pop();
      } else {
        // Deliberately no retained reference into `open`: the recursive call
        // pushes fresh instances and can reallocate the stack's storage, so
        // the host is re-indexed after it returns.
        const InstanceType& type =
            problem_.context.catalog->Get(open[choice.open_index].type_index);
        const ResourceVector demand = task.DemandFor(type.family);
        open[choice.open_index].used += demand;
        open[choice.open_index].tasks.push_back(task.id);
        Branch(next_task + 1, cost_so_far, open);
        open[choice.open_index].tasks.pop_back();
        open[choice.open_index].used -= demand;
      }
      if (aborted_) {
        arena_.Rewind(mark);
        return;
      }
    }
    arena_.Rewind(mark);
  }

  const Problem& problem_;
  Clock::time_point start_;
  SharedState* shared_;
  MonotonicArena arena_;  // Worker-local; rewound per branch node.

  ClusterConfig incumbent_;
  Money incumbent_cost_ = std::numeric_limits<double>::infinity();
  bool improved_ = false;
  std::uint64_t nodes_ = 0;
  std::uint64_t nodes_since_flush_ = 0;
  bool aborted_ = false;
};

// A branch point handed to a worker: the search state after fixing the
// placements of tasks[0..next_task). Ordered by serial DFS preorder.
struct FrontierNode {
  std::size_t next_task = 0;
  Money cost = 0.0;
  std::vector<OpenInstance> open;
};

// Expands the first branching levels in serial DFS order until at least
// `target` subtrees exist (or the tree is exhausted). Children are pruned
// only against the *seed* incumbent — a superset of what serial DFS keeps,
// since its evolving bound can only tighten.
std::vector<FrontierNode> ExpandFrontier(const Problem& problem, Money seed_cost,
                                         std::size_t target, std::uint64_t& nodes_expanded) {
  std::vector<FrontierNode> frontier(1);
  std::vector<Choice> choices;
  while (frontier.size() < target) {
    std::vector<FrontierNode> next;
    bool any_expanded = false;
    for (FrontierNode& node : frontier) {
      if (node.next_task == problem.tasks.size()) {
        next.push_back(std::move(node));  // Complete: carry as a leaf.
        continue;
      }
      if (node.cost + problem.SuffixBound(node.next_task, node.open) >=
          seed_cost - kCostEps) {
        ++nodes_expanded;
        continue;  // Serial DFS prunes this node under any incumbent.
      }
      any_expanded = true;
      ++nodes_expanded;
      const TaskInfo& task = *problem.tasks[node.next_task];
      EnumerateChoices(problem, node.next_task, node.open, node.cost, seed_cost, choices);
      for (const Choice& choice : choices) {
        FrontierNode child;
        child.next_task = node.next_task + 1;
        child.cost = node.cost + choice.cost_delta;
        child.open = node.open;
        if (choice.fresh) {
          const InstanceType& type = problem.context.catalog->Get(choice.type_index);
          OpenInstance fresh;
          fresh.type_index = choice.type_index;
          fresh.used = task.DemandFor(type.family);
          fresh.tasks.push_back(task.id);
          child.open.push_back(std::move(fresh));
        } else {
          OpenInstance& host = child.open[choice.open_index];
          const InstanceType& type = problem.context.catalog->Get(host.type_index);
          host.used += task.DemandFor(type.family);
          host.tasks.push_back(task.id);
        }
        next.push_back(std::move(child));
      }
    }
    frontier = std::move(next);
    if (!any_expanded || frontier.empty()) {
      break;
    }
  }
  return frontier;
}

// Picks the starting incumbent: the heuristic seed and/or a warm start.
// Returns {config, cost}; cost is +inf when neither is available.
std::pair<ClusterConfig, Money> SeedIncumbent(const SchedulingContext& context,
                                              const SolverOptions& options) {
  ClusterConfig config;
  Money cost = std::numeric_limits<double>::infinity();
  if (options.seed_with_heuristic) {
    const TnrpCalculator calculator(context, {.interference_aware = false});
    config = FullReconfiguration(context, calculator);
    cost = config.HourlyCost(*context.catalog);
  }
  if (options.warm_start != nullptr &&
      !options.warm_start->Validate(context).has_value()) {
    const Money warm_cost = options.warm_start->HourlyCost(*context.catalog);
    if (warm_cost < cost - kCostEps) {
      config = *options.warm_start;
      cost = warm_cost;
    }
  }
  return {std::move(config), cost};
}

}  // namespace

Money PackingLowerBound(const SchedulingContext& context,
                        const std::vector<const TaskInfo*>& tasks) {
  const std::array<double, kNumResources> unit = UnitPrices(*context.catalog);
  std::array<double, kNumResources> volume{};
  for (const TaskInfo* task : tasks) {
    const ResourceVector demand = MinDemand(*task);
    for (int r = 0; r < kNumResources; ++r) {
      volume[static_cast<std::size_t>(r)] += demand.Get(static_cast<Resource>(r));
    }
  }
  Money bound = 0.0;
  for (int r = 0; r < kNumResources; ++r) {
    bound = std::max(bound,
                     volume[static_cast<std::size_t>(r)] * unit[static_cast<std::size_t>(r)]);
  }
  return bound;
}

SolverResult SolveOptimalPacking(const SchedulingContext& context,
                                 const SolverOptions& options) {
  const Clock::time_point start = Clock::now();
  const Problem problem(context, options);
  auto [seed_config, seed_cost] = SeedIncumbent(context, options);

  const int threads =
      options.num_threads > 0 ? options.num_threads : ThreadPool::DefaultThreads();

  SolverResult result;
  if (threads <= 1) {
    Search search(problem, start, nullptr);
    search.SetIncumbent(seed_config, seed_cost);
    OpenList open;
    search.Run(0, 0.0, open);
    result.config = search.incumbent();
    result.hourly_cost = search.incumbent_cost();
    result.proven_optimal = !search.aborted();
    result.nodes_explored = search.nodes();
    result.wall_seconds = std::chrono::duration<double>(Clock::now() - start).count();
    if (options.trace) {
      options.trace.recorder->Instant(
          options.trace.track, "bnb.solve", options.trace_now_s, "nodes",
          static_cast<double>(result.nodes_explored), "optimal",
          result.proven_optimal ? 1.0 : 0.0);
    }
    return result;
  }

  std::uint64_t nodes_expanded = 0;
  const std::vector<FrontierNode> frontier = ExpandFrontier(
      problem, seed_cost, static_cast<std::size_t>(threads) * 8, nodes_expanded);

  struct SubtreeResult {
    bool found = false;
    Money cost = std::numeric_limits<double>::infinity();
    ClusterConfig config;
    bool aborted = false;
  };
  std::vector<SubtreeResult> results(frontier.size());
  SharedState shared(seed_cost);
  shared.nodes.store(nodes_expanded, std::memory_order_relaxed);
  std::atomic<std::size_t> cursor{0};

  const auto worker = [&] {
    OpenList open;  // Reused across subtrees; Assign keeps slot capacity.
    for (;;) {
      const std::size_t index = cursor.fetch_add(1, std::memory_order_relaxed);
      if (index >= frontier.size()) {
        return;
      }
      Search search(problem, start, &shared);
      search.SetIncumbentBound(seed_cost);
      open.Assign(frontier[index].open);
      search.Run(frontier[index].next_task, frontier[index].cost, open);
      SubtreeResult& slot = results[index];
      slot.found = search.improved();
      slot.cost = search.incumbent_cost();
      slot.config = search.incumbent();
      slot.aborted = search.aborted();
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads) - 1);
  for (int t = 1; t < threads; ++t) {
    pool.emplace_back(worker);
  }
  worker();
  for (std::thread& thread : pool) {
    thread.join();
  }

  // Fold per-subtree incumbents in frontier (= serial DFS) order with the
  // serial strict-improvement rule, restoring serial tie-breaking.
  result.config = std::move(seed_config);
  result.hourly_cost = seed_cost;
  bool aborted = false;
  for (const SubtreeResult& subtree : results) {
    aborted = aborted || subtree.aborted;
    if (subtree.found && subtree.cost < result.hourly_cost - kCostEps) {
      result.hourly_cost = subtree.cost;
      result.config = subtree.config;
    }
  }
  result.proven_optimal = !aborted;
  result.nodes_explored = shared.nodes.load(std::memory_order_relaxed);
  result.wall_seconds = std::chrono::duration<double>(Clock::now() - start).count();
  if (options.trace) {
    options.trace.recorder->Instant(
        options.trace.track, "bnb.solve", options.trace_now_s, "nodes",
        static_cast<double>(result.nodes_explored), "optimal",
        result.proven_optimal ? 1.0 : 0.0);
  }
  return result;
}

}  // namespace eva
