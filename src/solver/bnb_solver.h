// Exact branch-and-bound packing solver.
//
// Stands in for the paper's Gurobi ILP (§4.1) in the Table 4 micro-
// benchmark: minimize sum of instance costs subject to every task being
// assigned and per-instance multi-resource capacities. The search branches
// on the placement of one task at a time (into an existing open instance or
// a fresh instance of each type) and prunes with a per-resource volume
// lower bound: serving total demand V_r of resource r costs at least
// V_r * min_k (C_k / Q_k^r). Like the paper's ILP runs, the solver is
// time-limited and reports the best incumbent (seeded with the Full
// Reconfiguration solution) plus whether optimality was proven.

#ifndef SRC_SOLVER_BNB_SOLVER_H_
#define SRC_SOLVER_BNB_SOLVER_H_

#include <cstdint>

#include "src/sched/types.h"

namespace eva {

struct SolverOptions {
  double time_limit_seconds = 10.0;
  std::uint64_t max_nodes = 50'000'000;

  // Use the Full Reconfiguration heuristic as the initial incumbent
  // (dramatically improves pruning). Disable to measure raw search.
  bool seed_with_heuristic = true;
};

struct SolverResult {
  ClusterConfig config;
  Money hourly_cost = 0.0;
  bool proven_optimal = false;
  std::uint64_t nodes_explored = 0;
  double wall_seconds = 0.0;
};

// Solves the static packing problem for all tasks in `context`
// (interference-free, like the paper's ILP formulation).
SolverResult SolveOptimalPacking(const SchedulingContext& context,
                                 const SolverOptions& options = {});

// The volume lower bound used for pruning, exposed for tests: a valid lower
// bound on the hourly cost of hosting the given tasks.
Money PackingLowerBound(const SchedulingContext& context,
                        const std::vector<const TaskInfo*>& tasks);

}  // namespace eva

#endif  // SRC_SOLVER_BNB_SOLVER_H_
