// Exact branch-and-bound packing solver.
//
// Stands in for the paper's Gurobi ILP (§4.1) in the Table 4 micro-
// benchmark: minimize sum of instance costs subject to every task being
// assigned and per-instance multi-resource capacities. The search branches
// on the placement of one task at a time (into an existing open instance or
// a fresh instance of each type) and prunes with a per-resource volume
// lower bound: serving total demand V_r of resource r costs at least
// V_r * min_k (C_k / Q_k^r). Like the paper's ILP runs, the solver is
// time-limited and reports the best incumbent (seeded with the Full
// Reconfiguration solution) plus whether optimality was proven.
//
// With num_threads > 1 the search runs as a work-stealing subtree search:
// the first few branching levels are expanded (in serial DFS order) into a
// frontier of root subtrees, worker threads steal subtrees off a shared
// cursor, and a shared atomic incumbent *bound* accelerates everyone's
// pruning. Each worker keeps its own incumbent under the serial
// strict-improvement rule and only prunes against the shared bound with
// strict inequality, so exact-cost ties are still resolved by subtree
// order when the per-subtree results are folded back — the returned
// configuration and the proven_optimal flag match the serial search
// whenever the search completes within its limits (nodes_explored may
// differ; distinct configuration costs are assumed to differ by more than
// the 1e-12 comparison epsilon, which holds for sums of catalog prices).

#ifndef SRC_SOLVER_BNB_SOLVER_H_
#define SRC_SOLVER_BNB_SOLVER_H_

#include <cstdint>

#include "src/obs/trace.h"
#include "src/sched/types.h"

namespace eva {

struct SolverOptions {
  double time_limit_seconds = 10.0;
  std::uint64_t max_nodes = 50'000'000;

  // Use the Full Reconfiguration heuristic as the initial incumbent
  // (dramatically improves pruning). Disable to measure raw search.
  bool seed_with_heuristic = true;

  // Warm-start incumbent, e.g. the previous scheduling round's
  // configuration. Used when it validates against the context and beats
  // the heuristic seed (or replaces it when seeding is off). Not owned.
  const ClusterConfig* warm_start = nullptr;

  // Worker threads: 1 = the serial search, 0 = hardware concurrency,
  // n > 1 = exactly n.
  int num_threads = 1;

  // Optional span sink: when bound, the solver emits one "bnb.solve"
  // instant (nodes explored, optimality) stamped at `trace_now_s` — the
  // caller's *virtual* time, since the solver itself has none. Wall-clock
  // duration stays out of the trace so traced runs remain byte-comparable.
  TraceBinding trace;
  double trace_now_s = 0.0;
};

struct SolverResult {
  ClusterConfig config;
  Money hourly_cost = 0.0;
  bool proven_optimal = false;
  std::uint64_t nodes_explored = 0;
  double wall_seconds = 0.0;
};

// Solves the static packing problem for all tasks in `context`
// (interference-free, like the paper's ILP formulation).
SolverResult SolveOptimalPacking(const SchedulingContext& context,
                                 const SolverOptions& options = {});

// The volume lower bound used for pruning, exposed for tests: a valid lower
// bound on the hourly cost of hosting the given tasks.
Money PackingLowerBound(const SchedulingContext& context,
                        const std::vector<const TaskInfo*>& tasks);

}  // namespace eva

#endif  // SRC_SOLVER_BNB_SOLVER_H_
